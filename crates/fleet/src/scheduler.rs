//! The fleet side: spawn workers, assign shards, survive crashes.
//!
//! The scheduler owns N child processes speaking [`crate::proto`] over
//! piped stdin/stdout. One reader thread per worker turns its stdout into
//! messages on a shared channel; the scheduler loop multiplexes those with
//! a coarse tick for deadline checks and backoff-delayed respawns.
//!
//! Failure handling, in order of escalation:
//! * A worker `Error` reply (shard failed, worker alive): the shard is
//!   requeued until its attempt budget runs out.
//! * Worker death — protocol EOF, read error, or a per-shard deadline
//!   overrun (the worker is killed) — orphans its shard, which is requeued
//!   the same way; the fleet respawns a replacement after an exponentially
//!   growing backoff, up to a respawn budget.
//! * A `Hello` with the wrong protocol version or code fingerprint aborts
//!   the whole run: a mismatched binary computing records for a shared
//!   content-addressed cache is corruption, not an operational hiccup.

use crate::proto::{read_msg, write_msg, Msg, PROTOCOL_VERSION};
use sim_engine::par::CancelToken;
use spider_core::WorldConfig;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How the fleet is provisioned and how patient it is.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker executable (normally `current_exe()`).
    pub program: PathBuf,
    /// Arguments putting the executable in worker mode (e.g. `--worker`).
    pub args: Vec<String>,
    /// Worker processes to keep alive.
    pub workers: usize,
    /// Fingerprint every worker must present in its `Hello`.
    pub code_fingerprint: String,
    /// Attempts allowed per shard (first run + retries).
    pub max_attempts: u32,
    /// Wall-clock budget per shard attempt; overruns kill the worker.
    pub shard_deadline: Duration,
    /// Replacement workers allowed across the whole run.
    pub max_respawns: u32,
    /// Delay before the first respawn; doubles with each one.
    pub respawn_backoff: Duration,
}

impl FleetConfig {
    /// Defaults sized for local campaigns: 3 attempts per shard, a 10 min
    /// per-shard deadline, respawn budget of `2 × workers`.
    pub fn new(program: PathBuf, workers: usize, code_fingerprint: String) -> FleetConfig {
        let workers = workers.max(1);
        FleetConfig {
            program,
            args: Vec::new(),
            workers,
            code_fingerprint,
            max_attempts: 3,
            shard_deadline: Duration::from_secs(600),
            max_respawns: (workers as u32) * 2,
            respawn_backoff: Duration::from_millis(50),
        }
    }
}

/// One unit of work.
#[derive(Debug, Clone)]
pub struct ShardJob {
    /// Label, echoed through the protocol and the event log.
    pub name: String,
    /// The configuration to run.
    pub world: WorldConfig,
}

/// A completed shard.
#[derive(Debug, Clone)]
pub struct ShardDone {
    /// Index into the submitted job list.
    pub index: usize,
    /// Lossless `RunRecord` JSON from the worker.
    pub record_json: String,
    /// Events delivered by the worker's DES run.
    pub events_delivered: u64,
    /// Peak live event-queue depth on the worker.
    pub peak_queue_depth: u64,
    /// Worker-side wall time, ms.
    pub wall_ms: u64,
    /// Attempts it took (1 = no retries).
    pub attempts: u32,
}

/// The outcome of [`run_shards`].
#[derive(Debug)]
pub struct FleetRun {
    /// Completed shards, in completion order.
    pub done: Vec<ShardDone>,
    /// True if the cancel token stopped the run early.
    pub cancelled: bool,
}

/// Observable scheduler transitions, for manifest logging and progress.
#[derive(Debug, Clone)]
pub enum FleetEvent {
    /// A worker passed its handshake.
    WorkerReady {
        /// Worker slot.
        worker: usize,
    },
    /// A shard was written to a worker.
    Assigned {
        /// Worker slot.
        worker: usize,
        /// Shard label.
        shard: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A worker returned `Done`. Carries the full result so the caller
    /// can persist it the moment it lands (crash-resume durability),
    /// rather than waiting for the whole fleet to drain.
    Completed {
        /// Worker slot.
        worker: usize,
        /// Shard label.
        shard: String,
        /// The completed shard.
        done: ShardDone,
    },
    /// A worker died (EOF, read error, or deadline kill).
    WorkerDied {
        /// Worker slot.
        worker: usize,
        /// The shard it was running, if any.
        shard: Option<String>,
        /// Cause, human-readable.
        reason: String,
    },
    /// A shard went back on the queue.
    Requeued {
        /// Shard label.
        shard: String,
        /// The attempt number it will run as.
        attempt: u32,
    },
    /// A replacement worker was spawned.
    Respawned {
        /// Worker slot of the replacement.
        worker: usize,
        /// Backoff that preceded it, ms.
        backoff_ms: u64,
    },
}

/// Why the fleet gave up.
#[derive(Debug)]
pub enum FleetError {
    /// A worker process could not be spawned at all.
    Spawn(io::Error),
    /// A worker's `Hello` did not match (version or fingerprint).
    Handshake {
        /// Worker slot.
        worker: usize,
        /// What mismatched.
        detail: String,
    },
    /// A shard exhausted its attempt budget.
    ShardFailed {
        /// Shard label.
        shard: String,
        /// Attempts consumed.
        attempts: u32,
        /// Last failure cause.
        reason: String,
    },
    /// Every worker is dead and the respawn budget is spent.
    NoWorkers {
        /// Context for the operator.
        detail: String,
    },
    /// The caller's event sink failed (e.g. the manifest disk filled).
    Sink(io::Error),
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::Spawn(e) => write!(f, "fleet: failed to spawn worker: {e}"),
            FleetError::Handshake { worker, detail } => {
                write!(f, "fleet: worker {worker} handshake rejected: {detail}")
            }
            FleetError::ShardFailed {
                shard,
                attempts,
                reason,
            } => write!(
                f,
                "fleet: shard {shard:?} failed after {attempts} attempts: {reason}"
            ),
            FleetError::NoWorkers { detail } => {
                write!(
                    f,
                    "fleet: no live workers and respawn budget spent ({detail})"
                )
            }
            FleetError::Sink(e) => write!(f, "fleet: event sink failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Check a worker's `Hello` against what this scheduler requires.
///
/// Split out (and public) because the mixed-binary rejection is a load-
/// bearing safety property: records land in a *shared* content-addressed
/// cache keyed by fingerprint, so a worker whose binary would fingerprint
/// shards differently must be turned away before it runs anything.
pub fn validate_hello(msg: &Msg, expected_fingerprint: &str) -> Result<(), String> {
    match msg {
        Msg::Hello {
            protocol_version,
            code_fingerprint,
        } => {
            if *protocol_version != PROTOCOL_VERSION {
                return Err(format!(
                    "protocol version mismatch: worker speaks v{protocol_version}, \
                     scheduler speaks v{PROTOCOL_VERSION}"
                ));
            }
            if code_fingerprint != expected_fingerprint {
                return Err(format!(
                    "code fingerprint mismatch: worker built as {code_fingerprint:?}, \
                     scheduler expects {expected_fingerprint:?} — a stale worker binary \
                     would poison the shared record cache"
                ));
            }
            Ok(())
        }
        other => Err(format!("expected Hello, got {other:?}")),
    }
}

enum WorkerState {
    /// Spawned, `Hello` not yet validated.
    Starting,
    /// Handshake done, no shard assigned.
    Idle,
    /// Running a shard.
    Busy {
        job: usize,
        attempt: u32,
        since: Instant,
    },
    /// Reaped or written off; messages from it are ignored.
    Dead,
}

struct Worker {
    child: Child,
    stdin: Option<ChildStdin>,
    state: WorkerState,
}

enum FromWorker {
    Msg(Msg),
    /// Stream ended (cleanly or not); the string describes how.
    Eof(String),
}

fn spawn_worker(
    cfg: &FleetConfig,
    wid: usize,
    tx: &mpsc::Sender<(usize, FromWorker)>,
) -> io::Result<Worker> {
    let mut child = Command::new(&cfg.program)
        .args(&cfg.args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdin = child.stdin.take();
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::other("fleet: child stdout was not piped"))?;
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        loop {
            match read_msg(&mut reader) {
                Ok(Some(msg)) => {
                    if tx.send((wid, FromWorker::Msg(msg))).is_err() {
                        return;
                    }
                }
                Ok(None) => {
                    let _ = tx.send((wid, FromWorker::Eof("clean EOF".to_string())));
                    return;
                }
                Err(e) => {
                    let _ = tx.send((wid, FromWorker::Eof(format!("read error: {e}"))));
                    return;
                }
            }
        }
    });
    Ok(Worker {
        child,
        stdin,
        state: WorkerState::Starting,
    })
}

/// Exit-status suffix for a death report, once the child is reaped.
fn exit_detail(child: &mut Child) -> String {
    match child.wait() {
        Ok(status) => format!(" ({status})"),
        Err(_) => String::new(),
    }
}

/// Run `jobs` over a fleet of worker processes.
///
/// `on_event` observes every scheduler transition (for the campaign
/// manifest and progress lines). Completed shards come back in completion
/// order; on cancellation the partial result is returned with
/// `cancelled = true`.
pub fn run_shards(
    cfg: &FleetConfig,
    jobs: &[ShardJob],
    cancel: &CancelToken,
    mut on_event: impl FnMut(&FleetEvent) -> io::Result<()>,
) -> Result<FleetRun, FleetError> {
    let mut run = FleetRun {
        done: Vec::with_capacity(jobs.len()),
        cancelled: false,
    };
    if jobs.is_empty() {
        return Ok(run);
    }

    let (tx, rx) = mpsc::channel::<(usize, FromWorker)>();
    let fleet_size = cfg.workers.min(jobs.len()).max(1);
    let mut workers: Vec<Worker> = Vec::with_capacity(fleet_size);
    for wid in 0..fleet_size {
        workers.push(spawn_worker(cfg, wid, &tx).map_err(FleetError::Spawn)?);
    }

    // (job index, 1-based attempt) still to run.
    let mut pending: VecDeque<(usize, u32)> = (0..jobs.len()).map(|j| (j, 1)).collect();
    let mut respawns_used: u32 = 0;
    let mut backoff = cfg.respawn_backoff;
    let mut respawn_at: Option<Instant> = None;

    let shutdown_all = |workers: &mut Vec<Worker>| {
        for w in workers.iter_mut() {
            if let Some(mut stdin) = w.stdin.take() {
                let _ = write_msg(&mut stdin, &Msg::Shutdown);
            }
            if matches!(w.state, WorkerState::Busy { .. } | WorkerState::Starting) {
                // Don't wait out a shard (or a stalled worker) on the way
                // out — the caller has already decided the run is over.
                let _ = w.child.kill();
            }
            let _ = w.child.wait();
            w.state = WorkerState::Dead;
        }
    };

    macro_rules! fail {
        ($err:expr) => {{
            shutdown_all(&mut workers);
            return Err($err);
        }};
    }

    macro_rules! emit {
        ($event:expr) => {{
            if let Err(e) = on_event(&$event) {
                fail!(FleetError::Sink(e));
            }
        }};
    }

    // Put a shard back on the queue after a failed attempt, or give up if
    // its budget is spent. Returns the error to raise, if any.
    fn requeue(
        cfg: &FleetConfig,
        jobs: &[ShardJob],
        pending: &mut VecDeque<(usize, u32)>,
        job: usize,
        attempt: u32,
        reason: &str,
        on_event: &mut impl FnMut(&FleetEvent) -> io::Result<()>,
    ) -> Result<(), FleetError> {
        if attempt >= cfg.max_attempts {
            return Err(FleetError::ShardFailed {
                shard: jobs[job].name.clone(),
                attempts: attempt,
                reason: reason.to_string(),
            });
        }
        pending.push_back((job, attempt + 1));
        on_event(&FleetEvent::Requeued {
            shard: jobs[job].name.clone(),
            attempt: attempt + 1,
        })
        .map_err(FleetError::Sink)
    }

    while run.done.len() < jobs.len() {
        if cancel.is_cancelled() {
            run.cancelled = true;
            shutdown_all(&mut workers);
            return Ok(run);
        }

        // Respawn a replacement once its backoff has elapsed.
        if let Some(at) = respawn_at {
            if Instant::now() >= at {
                respawn_at = None;
                let wid = workers.len();
                match spawn_worker(cfg, wid, &tx) {
                    Ok(w) => {
                        workers.push(w);
                        emit!(FleetEvent::Respawned {
                            worker: wid,
                            backoff_ms: backoff.as_millis() as u64 / 2,
                        });
                    }
                    Err(e) => fail!(FleetError::Spawn(e)),
                }
            }
        }

        // Hand pending shards to idle workers.
        for wid in 0..workers.len() {
            if pending.is_empty() {
                break;
            }
            if !matches!(workers[wid].state, WorkerState::Idle) {
                continue;
            }
            let Some((job, attempt)) = pending.pop_front() else {
                break;
            };
            let assign = Msg::Assign {
                shard: jobs[job].name.clone(),
                world: Box::new(jobs[job].world.clone()),
            };
            let wrote = match workers[wid].stdin.as_mut() {
                Some(stdin) => write_msg(stdin, &assign),
                None => Err(io::Error::other("stdin already closed")),
            };
            match wrote {
                Ok(()) => {
                    workers[wid].state = WorkerState::Busy {
                        job,
                        attempt,
                        since: Instant::now(),
                    };
                    emit!(FleetEvent::Assigned {
                        worker: wid,
                        shard: jobs[job].name.clone(),
                        attempt,
                    });
                }
                Err(e) => {
                    // The worker is gone; its reader thread will report the
                    // EOF. Put the shard back (same attempt — it never ran)
                    // and write the worker off now so it isn't re-picked.
                    pending.push_front((job, attempt));
                    let _ = workers[wid].child.kill();
                    let detail = exit_detail(&mut workers[wid].child);
                    workers[wid].state = WorkerState::Dead;
                    workers[wid].stdin = None;
                    emit!(FleetEvent::WorkerDied {
                        worker: wid,
                        shard: None,
                        reason: format!("assign write failed: {e}{detail}"),
                    });
                    if respawns_used < cfg.max_respawns {
                        respawns_used += 1;
                        respawn_at = Some(Instant::now() + backoff);
                        backoff *= 2;
                    }
                }
            }
        }

        // Anything still to do but nobody to do it, and no respawn coming?
        let live = workers
            .iter()
            .filter(|w| !matches!(w.state, WorkerState::Dead))
            .count();
        if live == 0 && respawn_at.is_none() {
            fail!(FleetError::NoWorkers {
                detail: format!(
                    "{} shards incomplete, {respawns_used} respawns used",
                    jobs.len() - run.done.len()
                ),
            });
        }

        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok((wid, FromWorker::Msg(msg))) => {
                if matches!(workers[wid].state, WorkerState::Dead) {
                    continue; // late message from a written-off worker
                }
                match msg {
                    hello @ Msg::Hello { .. } => {
                        if !matches!(workers[wid].state, WorkerState::Starting) {
                            fail!(FleetError::Handshake {
                                worker: wid,
                                detail: "second Hello mid-session".to_string(),
                            });
                        }
                        match validate_hello(&hello, &cfg.code_fingerprint) {
                            Ok(()) => {
                                workers[wid].state = WorkerState::Idle;
                                emit!(FleetEvent::WorkerReady { worker: wid });
                            }
                            Err(detail) => fail!(FleetError::Handshake {
                                worker: wid,
                                detail,
                            }),
                        }
                    }
                    Msg::Done {
                        shard,
                        record_json,
                        events_delivered,
                        peak_queue_depth,
                        wall_ms,
                    } => {
                        let WorkerState::Busy { job, attempt, .. } = workers[wid].state else {
                            fail!(FleetError::Handshake {
                                worker: wid,
                                detail: "Done from a worker with no assignment".to_string(),
                            });
                        };
                        if shard != jobs[job].name {
                            fail!(FleetError::Handshake {
                                worker: wid,
                                detail: format!(
                                    "Done for {shard:?} but {:?} was assigned",
                                    jobs[job].name
                                ),
                            });
                        }
                        workers[wid].state = WorkerState::Idle;
                        let done = ShardDone {
                            index: job,
                            record_json,
                            events_delivered,
                            peak_queue_depth,
                            wall_ms,
                            attempts: attempt,
                        };
                        run.done.push(done.clone());
                        emit!(FleetEvent::Completed {
                            worker: wid,
                            shard,
                            done,
                        });
                    }
                    Msg::Error { shard, reason } => {
                        let WorkerState::Busy { job, attempt, .. } = workers[wid].state else {
                            fail!(FleetError::Handshake {
                                worker: wid,
                                detail: "Error from a worker with no assignment".to_string(),
                            });
                        };
                        workers[wid].state = WorkerState::Idle;
                        let reason = format!("worker error on {shard:?}: {reason}");
                        if let Err(err) = requeue(
                            cfg,
                            jobs,
                            &mut pending,
                            job,
                            attempt,
                            &reason,
                            &mut on_event,
                        ) {
                            fail!(err);
                        }
                    }
                    Msg::Assign { .. } | Msg::Shutdown => {
                        fail!(FleetError::Handshake {
                            worker: wid,
                            detail: "worker sent a scheduler-only message".to_string(),
                        });
                    }
                }
            }
            Ok((wid, FromWorker::Eof(how))) => {
                if matches!(workers[wid].state, WorkerState::Dead) {
                    continue; // already handled (deadline kill or write failure)
                }
                let detail = exit_detail(&mut workers[wid].child);
                let prev = std::mem::replace(&mut workers[wid].state, WorkerState::Dead);
                workers[wid].stdin = None;
                let (orphan, shard_name) = match prev {
                    WorkerState::Busy { job, attempt, .. } => {
                        (Some((job, attempt)), Some(jobs[job].name.clone()))
                    }
                    _ => (None, None),
                };
                emit!(FleetEvent::WorkerDied {
                    worker: wid,
                    shard: shard_name,
                    reason: format!("{how}{detail}"),
                });
                if let Some((job, attempt)) = orphan {
                    let reason = format!("worker died mid-shard: {how}{detail}");
                    if let Err(err) = requeue(
                        cfg,
                        jobs,
                        &mut pending,
                        job,
                        attempt,
                        &reason,
                        &mut on_event,
                    ) {
                        fail!(err);
                    }
                }
                let unfinished = jobs.len() - run.done.len();
                if unfinished > 0 && respawns_used < cfg.max_respawns {
                    respawns_used += 1;
                    respawn_at = Some(Instant::now() + backoff);
                    backoff *= 2;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Deadline sweep: kill workers that have sat on a shard
                // past the budget; the kill surfaces as EOF handled above,
                // but the orphaned shard is requeued here so the cause is
                // attributed correctly.
                for wid in 0..workers.len() {
                    let WorkerState::Busy {
                        job,
                        attempt,
                        since,
                    } = workers[wid].state
                    else {
                        continue;
                    };
                    if since.elapsed() <= cfg.shard_deadline {
                        continue;
                    }
                    let _ = workers[wid].child.kill();
                    let detail = exit_detail(&mut workers[wid].child);
                    workers[wid].state = WorkerState::Dead;
                    workers[wid].stdin = None;
                    emit!(FleetEvent::WorkerDied {
                        worker: wid,
                        shard: Some(jobs[job].name.clone()),
                        reason: format!(
                            "per-shard deadline ({:?}) exceeded{detail}",
                            cfg.shard_deadline
                        ),
                    });
                    let reason = format!("deadline exceeded after {:?}", cfg.shard_deadline);
                    if let Err(err) = requeue(
                        cfg,
                        jobs,
                        &mut pending,
                        job,
                        attempt,
                        &reason,
                        &mut on_event,
                    ) {
                        fail!(err);
                    }
                    if respawns_used < cfg.max_respawns {
                        respawns_used += 1;
                        respawn_at = Some(Instant::now() + backoff);
                        backoff *= 2;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // All reader threads gone; the live-worker check at the top
                // of the loop turns this into NoWorkers next iteration.
            }
        }
    }

    shutdown_all(&mut workers);
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_with_matching_identity_accepted() {
        let msg = Msg::Hello {
            protocol_version: PROTOCOL_VERSION,
            code_fingerprint: "fp-1".into(),
        };
        assert!(validate_hello(&msg, "fp-1").is_ok());
    }

    #[test]
    fn stale_fingerprint_rejected_with_cache_poisoning_explanation() {
        let msg = Msg::Hello {
            protocol_version: PROTOCOL_VERSION,
            code_fingerprint: "spider-campaign/0.0.9/record-v1/rev-1".into(),
        };
        let err = validate_hello(&msg, "spider-campaign/0.1.0/record-v1/rev-1")
            .expect_err("stale fingerprint must be rejected");
        assert!(err.contains("fingerprint mismatch"), "{err}");
        assert!(err.contains("poison"), "{err}");
    }

    #[test]
    fn wrong_protocol_version_rejected() {
        let msg = Msg::Hello {
            protocol_version: PROTOCOL_VERSION + 1,
            code_fingerprint: "fp".into(),
        };
        let err = validate_hello(&msg, "fp").expect_err("version mismatch must be rejected");
        assert!(err.contains("protocol version mismatch"), "{err}");
    }

    #[test]
    fn non_hello_rejected() {
        assert!(validate_hello(&Msg::Shutdown, "fp").is_err());
    }
}
