//! # geo
//!
//! Spatial indexing for metro-scale worlds. Every structure here speaks
//! **dense slot indices** (the `MacIntern` pattern: entity `i` lives at
//! `Vec` position `i`), so the simulation's per-entity state stays in
//! slot-indexed vectors and a spatial query returns indices straight
//! into them.
//!
//! * [`GridIndex`] — a static grid/bucket index over an AP deployment
//!   (CSR buckets over sorted cell keys). Disc range queries return
//!   ascending slot indices and visit O(cells in the disc) buckets
//!   instead of O(APs).
//! * [`MoverIndex`] — cell-keyed membership for moving entities
//!   (clients), updated incrementally as they move: one remove + one
//!   insert per cell crossing, nothing when the mover stays in its cell.
//! * [`RankedSet`] — a dense-slot set iterated in a caller-supplied
//!   rank order. The simulation uses it for the "heard set": the APs
//!   with a live scan-table entry, walked in MacAddr order so candidate
//!   collection is O(heard) yet byte-identical to the old full scan.
//! * [`contention`] — per-spatial-cell channel contention over a
//!   deployment, the co-channel degree each AP sees inside its
//!   interference disc, cross-checked against the Panda & Kumar /
//!   Bianchi saturation model in `analytical::cell`.
//!
//! Everything is deterministic by construction: sorted keys, ascending
//! slot order, no hash maps (this crate is simlint **Sim** tier).

pub mod contention;
pub mod grid;
pub mod rank;

pub use contention::{contention, CellContention, ContentionSummary};
pub use grid::{cell_key, CellKey, GridIndex, MoverIndex};
pub use rank::RankedSet;
