//! The grid/bucket index: static CSR buckets for fixed sites, a
//! BTree-backed incremental index for movers.

use std::collections::BTreeMap;

use mobility::geometry::Point;

/// A grid cell's key: `(floor(x / cell_m), floor(y / cell_m))`.
///
/// Keys are plain integer pairs so they sort lexicographically and can
/// index a CSR bucket table with binary search — no hashing anywhere.
pub type CellKey = (i32, i32);

/// The cell containing `p` at cell size `cell_m`.
///
/// `as i32` saturates on out-of-range coordinates, so even absurd
/// positions map to *some* deterministic cell rather than wrapping.
pub fn cell_key(p: Point, cell_m: f64) -> CellKey {
    ((p.x / cell_m).floor() as i32, (p.y / cell_m).floor() as i32)
}

/// A static spatial index over fixed sites (the AP deployment).
///
/// Built once from slot-indexed positions; cells are stored as a CSR
/// table — sorted cell keys, bucket offsets, and a single slot array —
/// so lookups are one binary search and queries touch contiguous
/// memory. Slots within a bucket are ascending, and disc queries return
/// ascending slots, so downstream iteration order is deterministic and
/// independent of build order.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_m: f64,
    /// Sorted, deduplicated keys of non-empty cells.
    cells: Vec<CellKey>,
    /// CSR offsets into `slots`; `cells.len() + 1` entries.
    starts: Vec<u32>,
    /// Site slots grouped by cell, ascending within each bucket.
    slots: Vec<u32>,
    /// Slot-indexed positions (a copy, so distance filtering stays in
    /// one cache-friendly structure).
    positions: Vec<Point>,
}

impl GridIndex {
    /// Build the index over slot-indexed `positions`.
    ///
    /// `cell_m` must be positive and finite; positions must be finite
    /// (the deployment generators guarantee both).
    pub fn build(positions: &[Point], cell_m: f64) -> GridIndex {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "grid cell size must be positive and finite"
        );
        let mut keyed: Vec<(CellKey, u32)> = positions
            .iter()
            .enumerate()
            .map(|(slot, &p)| (cell_key(p, cell_m), slot as u32))
            .collect();
        keyed.sort_unstable();
        let mut cells = Vec::new();
        let mut starts = Vec::new();
        let mut slots = Vec::with_capacity(keyed.len());
        for (key, slot) in keyed {
            if cells.last() != Some(&key) {
                cells.push(key);
                starts.push(slots.len() as u32);
            }
            slots.push(slot);
        }
        starts.push(slots.len() as u32);
        GridIndex {
            cell_m,
            cells,
            starts,
            slots,
            positions: positions.to_vec(),
        }
    }

    /// Number of indexed sites.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the index holds no sites.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The cell size in metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The indexed position of a slot.
    pub fn position(&self, slot: usize) -> Point {
        self.positions[slot]
    }

    /// The slots in one cell (ascending), empty when the cell has none.
    pub fn sites_in_cell(&self, key: CellKey) -> &[u32] {
        match self.cells.binary_search(&key) {
            Ok(i) => &self.slots[self.starts[i] as usize..self.starts[i + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Iterate non-empty cells in ascending key order with their slots.
    pub fn cells(&self) -> impl Iterator<Item = (CellKey, &[u32])> {
        self.cells.iter().enumerate().map(|(i, &key)| {
            (
                key,
                &self.slots[self.starts[i] as usize..self.starts[i + 1] as usize],
            )
        })
    }

    /// Collect every slot within `radius` of `center` into `out`
    /// (cleared first), in ascending slot order.
    ///
    /// Visits only the cells overlapping the disc's bounding square:
    /// O(cells in square + matches), not O(sites).
    pub fn query_disc_into(&self, center: Point, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        // NaN radii fall through to the empty result, like negatives.
        if radius < 0.0 || radius.is_nan() {
            return;
        }
        let r2 = radius * radius;
        let (cx0, cy0) = cell_key(
            Point::new(center.x - radius, center.y - radius),
            self.cell_m,
        );
        let (cx1, cy1) = cell_key(
            Point::new(center.x + radius, center.y + radius),
            self.cell_m,
        );
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                for &slot in self.sites_in_cell((cx, cy)) {
                    if self.positions[slot as usize].distance_sq(center) <= r2 {
                        out.push(slot);
                    }
                }
            }
        }
        // Buckets are walked in key order, not slot order; one sort
        // restores the ascending-slot contract.
        out.sort_unstable();
    }

    /// Convenience allocation-per-call form of [`query_disc_into`].
    ///
    /// [`query_disc_into`]: GridIndex::query_disc_into
    pub fn query_disc(&self, center: Point, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_disc_into(center, radius, &mut out);
        out
    }

    /// Count the slots within `radius` of `center` without collecting
    /// them (no allocation).
    pub fn count_in_disc(&self, center: Point, radius: f64) -> usize {
        // NaN radii fall through to the empty result, like negatives.
        if radius < 0.0 || radius.is_nan() {
            return 0;
        }
        let r2 = radius * radius;
        let (cx0, cy0) = cell_key(
            Point::new(center.x - radius, center.y - radius),
            self.cell_m,
        );
        let (cx1, cy1) = cell_key(
            Point::new(center.x + radius, center.y + radius),
            self.cell_m,
        );
        let mut n = 0;
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                for &slot in self.sites_in_cell((cx, cy)) {
                    if self.positions[slot as usize].distance_sq(center) <= r2 {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}

/// Cell-keyed membership for moving entities, updated incrementally.
///
/// Each mover owns a dense slot; [`MoverIndex::update`] is a no-op while
/// the mover stays inside its current cell and otherwise performs one
/// sorted remove + one sorted insert. Membership vectors keep slots
/// ascending, and the cell map is a `BTreeMap`, so iteration order is
/// deterministic.
#[derive(Debug, Clone)]
pub struct MoverIndex {
    cell_m: f64,
    /// Slot → current cell (`None` before the first update).
    cell_of: Vec<Option<CellKey>>,
    /// Cell → ascending member slots; empty cells are removed.
    members: BTreeMap<CellKey, Vec<u32>>,
}

impl MoverIndex {
    /// An index for `movers` dense slots at cell size `cell_m`.
    pub fn new(cell_m: f64, movers: usize) -> MoverIndex {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "grid cell size must be positive and finite"
        );
        MoverIndex {
            cell_m,
            cell_of: vec![None; movers],
            members: BTreeMap::new(),
        }
    }

    /// Record `slot`'s new position. Returns `true` when the mover
    /// crossed into a different cell (membership changed).
    pub fn update(&mut self, slot: usize, pos: Point) -> bool {
        let key = cell_key(pos, self.cell_m);
        if self.cell_of[slot] == Some(key) {
            return false;
        }
        self.detach(slot);
        self.cell_of[slot] = Some(key);
        let bucket = self.members.entry(key).or_default();
        if let Err(i) = bucket.binary_search(&(slot as u32)) {
            bucket.insert(i, slot as u32);
        }
        true
    }

    /// Remove `slot` from its cell (e.g. the mover left the world).
    pub fn remove(&mut self, slot: usize) {
        self.detach(slot);
        self.cell_of[slot] = None;
    }

    fn detach(&mut self, slot: usize) {
        if let Some(old) = self.cell_of[slot] {
            if let Some(bucket) = self.members.get_mut(&old) {
                if let Ok(i) = bucket.binary_search(&(slot as u32)) {
                    bucket.remove(i);
                }
                if bucket.is_empty() {
                    self.members.remove(&old);
                }
            }
        }
    }

    /// The cell a mover currently occupies.
    pub fn cell_of(&self, slot: usize) -> Option<CellKey> {
        self.cell_of[slot]
    }

    /// Ascending member slots of one cell.
    pub fn movers_in(&self, key: CellKey) -> &[u32] {
        self.members.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn cell_key_floors_toward_negative_infinity() {
        assert_eq!(cell_key(p(0.0, 0.0), 100.0), (0, 0));
        assert_eq!(cell_key(p(99.9, 100.0), 100.0), (0, 1));
        assert_eq!(cell_key(p(-0.1, -100.0), 100.0), (-1, -1));
    }

    #[test]
    fn buckets_group_by_cell_with_ascending_slots() {
        // Slots 0, 2 share a cell; 1 sits alone.
        let g = GridIndex::build(&[p(10.0, 10.0), p(250.0, 10.0), p(90.0, 90.0)], 100.0);
        assert_eq!(g.len(), 3);
        assert_eq!(g.cell_count(), 2);
        assert_eq!(g.sites_in_cell((0, 0)), &[0, 2]);
        assert_eq!(g.sites_in_cell((2, 0)), &[1]);
        assert_eq!(g.sites_in_cell((5, 5)), &[] as &[u32]);
    }

    #[test]
    fn disc_query_matches_linear_scan() {
        // A deterministic pseudo-random scatter, checked exhaustively
        // against the O(n) reference at several centers and radii.
        let mut x = 0x9E37_79B9u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        let positions: Vec<Point> = (0..500)
            .map(|_| p(next() * 2_000.0 - 500.0, next() * 2_000.0 - 500.0))
            .collect();
        let g = GridIndex::build(&positions, 130.0);
        for (cx, cy, r) in [
            (0.0, 0.0, 400.0),
            (700.0, 300.0, 150.0),
            (1_500.0, 1_500.0, 900.0),
            (-400.0, 900.0, 50.0),
            (250.0, 250.0, 0.0),
        ] {
            let center = p(cx, cy);
            let expect: Vec<u32> = positions
                .iter()
                .enumerate()
                .filter(|(_, q)| q.distance_sq(center) <= r * r)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(g.query_disc(center, r), expect, "center {center:?} r {r}");
            assert_eq!(g.count_in_disc(center, r), expect.len());
        }
    }

    #[test]
    fn disc_query_handles_degenerate_radii() {
        let g = GridIndex::build(&[p(0.0, 0.0)], 100.0);
        assert!(g.query_disc(p(0.0, 0.0), -1.0).is_empty());
        assert!(g.query_disc(p(0.0, 0.0), f64::NAN).is_empty());
        assert_eq!(g.query_disc(p(0.0, 0.0), 0.0), vec![0]);
    }

    #[test]
    fn empty_index_answers_empty() {
        let g = GridIndex::build(&[], 100.0);
        assert!(g.is_empty());
        assert_eq!(g.cell_count(), 0);
        assert!(g.query_disc(p(0.0, 0.0), 1_000.0).is_empty());
    }

    #[test]
    fn cells_iterate_in_key_order() {
        let g = GridIndex::build(&[p(250.0, 10.0), p(10.0, 10.0), p(10.0, 250.0)], 100.0);
        let keys: Vec<CellKey> = g.cells().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        let total: usize = g.cells().map(|(_, s)| s.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn mover_updates_are_incremental() {
        let mut m = MoverIndex::new(100.0, 2);
        assert_eq!(m.cell_of(0), None);
        // First placement lands in a cell.
        assert!(m.update(0, p(10.0, 10.0)));
        assert_eq!(m.cell_of(0), Some((0, 0)));
        assert_eq!(m.movers_in((0, 0)), &[0]);
        // Movement inside the cell changes nothing.
        assert!(!m.update(0, p(90.0, 90.0)));
        // Crossing a boundary migrates membership.
        assert!(m.update(0, p(110.0, 90.0)));
        assert_eq!(m.movers_in((0, 0)), &[] as &[u32]);
        assert_eq!(m.movers_in((1, 0)), &[0]);
        // A second mover shares the cell with ascending slots.
        m.update(1, p(150.0, 50.0));
        assert_eq!(m.movers_in((1, 0)), &[0, 1]);
        assert_eq!(m.occupied_cells(), 1);
        m.remove(0);
        assert_eq!(m.movers_in((1, 0)), &[1]);
        assert_eq!(m.cell_of(0), None);
    }

    /// Fleet-world property: N movers random-walking across cell
    /// boundaries, all updated in the same tick. The index must (a)
    /// match a from-scratch reference at every tick, (b) report a
    /// crossing exactly when the reference says the cell changed, and
    /// (c) reach the same state no matter what order the same-tick
    /// updates are applied in.
    #[test]
    fn n_movers_crossing_in_the_same_tick_match_reference() {
        const MOVERS: usize = 16;
        const TICKS: usize = 200;
        const CELL: f64 = 100.0;
        let mut x = 0xD1B5_4A32u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        // Steps comparable to the cell size so same-tick multi-crossings
        // are common; walks wander negative too (floor-division cells).
        let mut pos = vec![p(0.0, 0.0); MOVERS];
        let mut fwd = MoverIndex::new(CELL, MOVERS);
        let mut rev = MoverIndex::new(CELL, MOVERS);
        for tick in 0..TICKS {
            for q in pos.iter_mut() {
                *q = p(
                    q.x + (next() - 0.5) * 2.5 * CELL,
                    q.y + (next() - 0.5) * 2.5 * CELL,
                );
            }
            // Apply the same tick in ascending and descending slot order.
            for (slot, q) in pos.iter().enumerate() {
                let expect_cross = fwd.cell_of(slot) != Some(cell_key(*q, CELL));
                assert_eq!(
                    fwd.update(slot, *q),
                    expect_cross,
                    "crossing flag wrong for slot {slot} at tick {tick}"
                );
            }
            for slot in (0..MOVERS).rev() {
                rev.update(slot, pos[slot]);
            }
            // Reference: rebuild membership from scratch.
            let mut reference: BTreeMap<CellKey, Vec<u32>> = BTreeMap::new();
            for (slot, q) in pos.iter().enumerate() {
                reference
                    .entry(cell_key(*q, CELL))
                    .or_default()
                    .push(slot as u32);
            }
            for m in [&fwd, &rev] {
                assert_eq!(m.occupied_cells(), reference.len(), "tick {tick}");
                for (key, slots) in &reference {
                    assert_eq!(
                        m.movers_in(*key),
                        slots.as_slice(),
                        "cell {key:?} tick {tick}"
                    );
                }
                for (slot, q) in pos.iter().enumerate() {
                    assert_eq!(m.cell_of(slot), Some(cell_key(*q, CELL)));
                }
            }
        }
    }
}
