//! Per-cell channel contention over a deployment.
//!
//! Contention is a *spatial* quantity: what matters to an AP is how many
//! co-channel transmitters share its interference disc, and what matters
//! to a planner is how that count distributes over the map. This module
//! computes both from a [`GridIndex`], in O(sites in the disc) per AP
//! rather than O(sites)², and the result is cross-checked (in tests and
//! in the `channel-assignment` experiment) against the Panda & Kumar /
//! Bianchi saturation cell model in `analytical::cell`: the co-channel
//! degree computed here is exactly the `n` that model takes.

use wifi_mac::channel::Channel;

use crate::grid::{CellKey, GridIndex};

/// One grid cell's channel occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellContention {
    /// The cell.
    pub cell: CellKey,
    /// Total APs in the cell.
    pub aps: u32,
    /// APs per channel, ascending by channel number.
    pub per_channel: Vec<(Channel, u32)>,
}

/// Contention over a whole deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionSummary {
    /// Per-cell occupancy, ascending by cell key.
    pub cells: Vec<CellContention>,
    /// Slot-indexed co-channel degree: for AP `i`, the number of APs on
    /// `i`'s channel within the interference radius of `i`'s position —
    /// including `i` itself, so the degree is the `n` of a saturation
    /// cell model (`n ≥ 1` always).
    pub co_channel_degree: Vec<u32>,
}

impl ContentionSummary {
    /// The worst co-channel degree any AP sees.
    pub fn max_degree(&self) -> u32 {
        self.co_channel_degree.iter().copied().max().unwrap_or(0)
    }

    /// The mean co-channel degree over all APs (0.0 for an empty map).
    pub fn mean_degree(&self) -> f64 {
        if self.co_channel_degree.is_empty() {
            return 0.0;
        }
        self.co_channel_degree
            .iter()
            .map(|&d| d as f64)
            .sum::<f64>()
            / self.co_channel_degree.len() as f64
    }
}

/// Compute per-cell occupancy and per-AP co-channel degree.
///
/// `channels[slot]` is the channel of the site at dense `slot` in
/// `grid`; `radius_m` is the interference radius (how far a co-channel
/// transmitter still contends for the medium).
pub fn contention(grid: &GridIndex, channels: &[Channel], radius_m: f64) -> ContentionSummary {
    assert_eq!(
        grid.len(),
        channels.len(),
        "one channel per indexed site, slot-aligned"
    );
    let mut cells = Vec::with_capacity(grid.cell_count());
    for (cell, slots) in grid.cells() {
        let mut per_channel: Vec<(Channel, u32)> = Vec::new();
        for &slot in slots {
            let ch = channels[slot as usize];
            match per_channel.binary_search_by_key(&ch, |&(c, _)| c) {
                Ok(i) => per_channel[i].1 += 1,
                Err(i) => per_channel.insert(i, (ch, 1)),
            }
        }
        cells.push(CellContention {
            cell,
            aps: slots.len() as u32,
            per_channel,
        });
    }

    let mut co_channel_degree = Vec::with_capacity(grid.len());
    let mut near = Vec::new();
    for slot in 0..grid.len() {
        grid.query_disc_into(grid.position(slot), radius_m, &mut near);
        let ch = channels[slot];
        let degree = near
            .iter()
            .filter(|&&other| channels[other as usize] == ch)
            .count() as u32;
        co_channel_degree.push(degree);
    }
    ContentionSummary {
        cells,
        co_channel_degree,
    }
}

/// Station-weighted co-channel load: for AP `i`, the total number of
/// live stations associated to APs on `i`'s channel within `radius_m`
/// of `i` — including `i`'s own stations.
///
/// This is the fleet-world refinement of [`contention`]: the plain
/// co-channel *degree* counts transmitters that could contend, while
/// the load counts the stations actually camped on them, which Panda &
/// Kumar's model says is what governs per-cell throughput. An AP with
/// no stations contributes nothing, so an idle dense deployment scores
/// zero everywhere; with exactly one station per AP the load equals the
/// co-channel degree.
pub fn co_channel_load(
    grid: &GridIndex,
    channels: &[Channel],
    radius_m: f64,
    stations: &[u32],
) -> Vec<u64> {
    assert_eq!(
        grid.len(),
        channels.len(),
        "one channel per indexed site, slot-aligned"
    );
    assert_eq!(
        grid.len(),
        stations.len(),
        "one station count per indexed site, slot-aligned"
    );
    let mut load = Vec::with_capacity(grid.len());
    let mut near = Vec::new();
    for slot in 0..grid.len() {
        grid.query_disc_into(grid.position(slot), radius_m, &mut near);
        let ch = channels[slot];
        let total: u64 = near
            .iter()
            .filter(|&&other| channels[other as usize] == ch)
            .map(|&other| stations[other as usize] as u64)
            .sum();
        load.push(total);
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::geometry::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn per_cell_counts_and_degrees_are_exact() {
        // Two tight clusters 1 km apart: three APs on CH1 + one on CH6
        // in the first, two on CH1 in the second.
        let positions = [
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(0.0, 10.0),
            p(10.0, 10.0),
            p(1_000.0, 0.0),
            p(1_010.0, 0.0),
        ];
        let channels = [
            Channel::CH1,
            Channel::CH1,
            Channel::CH1,
            Channel::CH6,
            Channel::CH1,
            Channel::CH1,
        ];
        let grid = GridIndex::build(&positions, 50.0);
        let s = contention(&grid, &channels, 100.0);
        // Degrees: cluster one's CH1 APs see each other (3), its CH6 AP
        // only itself (1); cluster two's pair see each other (2).
        assert_eq!(s.co_channel_degree, vec![3, 3, 3, 1, 2, 2]);
        assert_eq!(s.max_degree(), 3);
        assert!((s.mean_degree() - 14.0 / 6.0).abs() < 1e-12);
        // Per-cell occupancy sums to the AP count, per channel.
        let total: u32 = s.cells.iter().map(|c| c.aps).sum();
        assert_eq!(total, 6);
        let first = &s.cells[0];
        assert_eq!(
            first.per_channel,
            vec![(Channel::CH1, 3), (Channel::CH6, 1)]
        );
    }

    #[test]
    fn degree_is_the_n_of_the_analytical_cell_model() {
        // The cross-check the subsystem promises: feed the computed
        // co-channel degrees into the Panda & Kumar / Bianchi saturation
        // model and verify the physics come out right — per-AP capacity
        // strictly falls as the degree the grid reports rises.
        use analytical::cell::CellModel;
        // A dense co-channel cluster (5 APs) and a lone AP far away.
        let positions = [
            p(0.0, 0.0),
            p(5.0, 0.0),
            p(0.0, 5.0),
            p(5.0, 5.0),
            p(2.0, 2.0),
            p(5_000.0, 0.0),
        ];
        let channels = [Channel::CH6; 6];
        let grid = GridIndex::build(&positions, 100.0);
        let s = contention(&grid, &channels, 200.0);
        assert_eq!(s.co_channel_degree, vec![5, 5, 5, 5, 5, 1]);

        let model = CellModel::dsss_11b();
        let dense = model.per_ap_throughput_bps(s.co_channel_degree[0] as usize);
        let lone = model.per_ap_throughput_bps(s.co_channel_degree[5] as usize);
        assert!(
            dense < lone,
            "per-AP capacity must fall with co-channel degree: {dense} vs {lone}"
        );
        // The shared medium caps the dense cell: five co-channel APs
        // together still deliver less than two isolated APs would.
        assert!(5.0 * dense < 2.0 * lone);
    }

    #[test]
    #[should_panic(expected = "slot-aligned")]
    fn channel_slice_must_match_grid() {
        let grid = GridIndex::build(&[p(0.0, 0.0)], 100.0);
        let _ = contention(&grid, &[], 100.0);
    }

    #[test]
    fn station_weighted_load_reduces_to_degree_at_one_station_each() {
        let positions = [
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(0.0, 10.0),
            p(10.0, 10.0),
            p(1_000.0, 0.0),
            p(1_010.0, 0.0),
        ];
        let channels = [
            Channel::CH1,
            Channel::CH1,
            Channel::CH1,
            Channel::CH6,
            Channel::CH1,
            Channel::CH1,
        ];
        let grid = GridIndex::build(&positions, 50.0);
        let degrees = contention(&grid, &channels, 100.0).co_channel_degree;

        // Idle deployment: nothing contends.
        let idle = co_channel_load(&grid, &channels, 100.0, &[0; 6]);
        assert_eq!(idle, vec![0; 6]);

        // One station per AP: load is exactly the co-channel degree.
        let uniform = co_channel_load(&grid, &channels, 100.0, &[1; 6]);
        assert_eq!(
            uniform,
            degrees.iter().map(|&d| d as u64).collect::<Vec<_>>()
        );

        // A fleet of 5 camped on the first AP loads its co-channel
        // neighbours but not the CH6 AP or the far cluster.
        let load = co_channel_load(&grid, &channels, 100.0, &[5, 0, 0, 0, 0, 0]);
        assert_eq!(load, vec![5, 5, 5, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "one station count")]
    fn station_slice_must_match_grid() {
        let grid = GridIndex::build(&[p(0.0, 0.0)], 100.0);
        let _ = co_channel_load(&grid, &[Channel::CH1], 100.0, &[]);
    }
}
