//! A dense-slot set iterated in an external rank order.

/// A set of dense slots whose iteration order is a fixed, caller-supplied
/// ranking — not insertion order, not slot order.
///
/// The simulation's "heard set" is the motivating use: AP slots with a
/// live scan-table entry must be walked in **MacAddr order** (the rank)
/// so that candidate lists — and with them floating-point score sums and
/// same-score tie-breaks — are byte-identical to a full scan over the
/// interned BSSID table, while costing O(heard) instead of O(APs).
///
/// Membership updates keep `members` sorted by rank with one binary
/// search + shift; the set is expected to stay small (the slots a mobile
/// client can currently hear), so the O(len) shift is cheaper than any
/// tree, and iteration is a contiguous walk.
#[derive(Debug, Clone)]
pub struct RankedSet {
    /// Slot → rank. Ranks are a permutation of `0..rank_of.len()`.
    rank_of: Vec<u32>,
    /// Member slots, sorted by `rank_of[slot]` ascending.
    members: Vec<u32>,
    /// Slot → membership flag (O(1) `contains`, duplicate-proof insert).
    present: Vec<bool>,
}

impl RankedSet {
    /// An empty set over `rank_of.len()` slots, iterating members by
    /// ascending `rank_of[slot]`.
    pub fn new(rank_of: Vec<u32>) -> RankedSet {
        let n = rank_of.len();
        assert!(
            rank_of.iter().all(|&r| (r as usize) < n),
            "ranks must be a permutation of 0..len"
        );
        RankedSet {
            rank_of,
            members: Vec::new(),
            present: vec![false; n],
        }
    }

    /// Add `slot`; returns `true` when it was not already present.
    pub fn insert(&mut self, slot: usize) -> bool {
        if self.present[slot] {
            return false;
        }
        self.present[slot] = true;
        let rank = self.rank_of[slot];
        let i = self
            .members
            .partition_point(|&m| self.rank_of[m as usize] < rank);
        self.members.insert(i, slot as u32);
        true
    }

    /// Remove `slot`; returns `true` when it was present.
    pub fn remove(&mut self, slot: usize) -> bool {
        if !self.present[slot] {
            return false;
        }
        self.present[slot] = false;
        let rank = self.rank_of[slot];
        let i = self
            .members
            .partition_point(|&m| self.rank_of[m as usize] < rank);
        // The slot sits exactly at its rank's partition point.
        self.members.remove(i);
        true
    }

    /// True when `slot` is in the set.
    pub fn contains(&self, slot: usize) -> bool {
        self.present[slot]
    }

    /// Keep only the members for which `keep` returns true, preserving
    /// rank order.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let present = &mut self.present;
        self.members.retain(|&slot| {
            let k = keep(slot as usize);
            if !k {
                present[slot as usize] = false;
            }
            k
        });
    }

    /// Iterate member slots in ascending rank order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().map(|&s| s as usize)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no slots are present.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_in_rank_order_not_slot_order() {
        // Slot 0 ranks last, slot 3 first.
        let mut s = RankedSet::new(vec![3, 2, 1, 0]);
        assert!(s.insert(0));
        assert!(s.insert(3));
        assert!(s.insert(1));
        assert!(!s.insert(1), "duplicate insert is a no-op");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 1, 0]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(3) && !s.contains(2));
    }

    #[test]
    fn remove_and_retain_preserve_order() {
        let mut s = RankedSet::new(vec![0, 1, 2, 3, 4]);
        for slot in [4, 2, 0, 3] {
            s.insert(slot);
        }
        assert!(s.remove(2));
        assert!(!s.remove(2));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 4]);
        s.retain(|slot| slot != 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 4]);
        assert!(!s.contains(3));
        s.retain(|_| false);
        assert!(s.is_empty());
        // Reinsertion after retain works (present flags were cleared).
        assert!(s.insert(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn out_of_range_rank_is_rejected() {
        let _ = RankedSet::new(vec![0, 7]);
    }
}
