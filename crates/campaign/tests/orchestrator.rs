//! End-to-end campaign acceptance tests from the issue:
//!
//! 1. **Cache correctness** — changing any config field or seed misses;
//!    an unchanged shard hits and returns exactly what a fresh run
//!    returns (byte-identical record files).
//! 2. **Interrupt and resume** — a campaign cancelled mid-sweep picks up
//!    from the manifest, re-runs only the unfinished shards, and the
//!    final merged records are byte-identical to an uninterrupted run.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use campaign::manifest::Manifest;
use campaign::Campaign;
use mobility::deployment::ApSite;
use mobility::geometry::Point;
use sim_engine::time::Duration;
use spider_core::config::SpiderConfig;
use spider_core::report::RunRecord;
use spider_core::world::{run, ClientMotion, WorldConfig};
use wifi_mac::channel::Channel;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "campaign-orchestrator-test-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn world(seed: u64) -> WorldConfig {
    let site = ApSite {
        id: 1,
        position: Point::new(0.0, 0.0),
        channel: Channel::CH1,
        backhaul_bps: 2_000_000,
        dhcp_delay_min: Duration::from_millis(100),
        dhcp_delay_max: Duration::from_millis(300),
    };
    WorldConfig::new(
        seed,
        vec![site],
        ClientMotion::Fixed(Point::new(0.0, 10.0)),
        SpiderConfig::single_channel_multi_ap(Channel::CH1),
        Duration::from_secs(10),
    )
}

fn shards(seeds: &[u64]) -> Vec<(String, WorldConfig)> {
    seeds
        .iter()
        .map(|&s| (format!("seed-{s}"), world(s)))
        .collect()
}

/// Every record file under `<dir>/reports`, name → bytes.
fn record_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir.join("reports")).expect("reports dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, fs::read(entry.path()).expect("record bytes"));
    }
    out
}

#[test]
fn second_run_is_all_hits_with_byte_identical_records() {
    let dir = scratch("all-hits");
    let campaign = Campaign::new(&dir).with_workers(2).with_quiet(true);

    let first = campaign.run(shards(&[5, 6, 7])).expect("first run");
    assert_eq!((first.hits, first.misses, first.cancelled), (0, 3, 0));
    let after_first = record_files(&dir);
    assert_eq!(after_first.len(), 3);

    let second = campaign.run(shards(&[5, 6, 7])).expect("second run");
    assert_eq!((second.hits, second.misses, second.cancelled), (3, 0, 0));
    assert_eq!(
        record_files(&dir),
        after_first,
        "hits must not rewrite records"
    );

    // A cached result is exactly what a fresh simulation produces.
    for (outcome, seed) in second.outcomes.iter().zip([5u64, 6, 7]) {
        assert!(outcome.cache_hit);
        assert_eq!(outcome.label, format!("seed-{seed}"));
        assert_eq!(
            RunRecord::to_json(&outcome.result).unwrap(),
            RunRecord::to_json(&run(world(seed))).unwrap(),
            "cached seed-{seed} diverged from a fresh run"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn any_config_or_seed_change_is_a_miss() {
    let dir = scratch("miss-on-change");
    let campaign = Campaign::new(&dir).with_workers(1).with_quiet(true);
    campaign.run(shards(&[5])).expect("seed run");

    // Different seed: miss.
    let other_seed = campaign.run(shards(&[6])).expect("other seed");
    assert_eq!((other_seed.hits, other_seed.misses), (0, 1));

    // Same seed, one driver-config field tweaked: miss.
    let mut tweaked = world(5);
    tweaked.spider.max_ifaces = 1;
    let cfg_change = campaign
        .run(vec![("tweaked".to_string(), tweaked)])
        .expect("tweaked run");
    assert_eq!((cfg_change.hits, cfg_change.misses), (0, 1));

    // Same seed, one world-level field tweaked: miss.
    let mut longer = world(5);
    longer.duration = Duration::from_secs(11);
    let world_change = campaign
        .run(vec![("longer".to_string(), longer)])
        .expect("longer run");
    assert_eq!((world_change.hits, world_change.misses), (0, 1));

    // The untouched original still hits.
    let replay = campaign.run(shards(&[5])).expect("replay");
    assert_eq!((replay.hits, replay.misses), (1, 0));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn partial_campaign_resumes_and_reruns_only_missing_shards() {
    // The deterministic interrupt shape: a campaign that stopped after the
    // first two of four shards (exactly what an interrupt leaves behind,
    // per the manifest/cache atomicity guarantees).
    let interrupted = scratch("resume-interrupted");
    let reference = scratch("resume-reference");
    let all = [11u64, 12, 13, 14];

    let part = Campaign::new(&interrupted).with_workers(2).with_quiet(true);
    let first = part.run(shards(&all[..2])).expect("partial run");
    assert_eq!(first.misses, 2);

    let resumed = part.run(shards(&all)).expect("resumed run");
    assert_eq!(
        (resumed.hits, resumed.misses, resumed.cancelled),
        (2, 2, 0),
        "resume must re-run only the two unfinished shards"
    );

    let uninterrupted = Campaign::new(&reference).with_workers(2).with_quiet(true);
    uninterrupted.run(shards(&all)).expect("reference run");
    assert_eq!(
        record_files(&interrupted),
        record_files(&reference),
        "resumed campaign's records must be byte-identical to an uninterrupted run"
    );
    let _ = fs::remove_dir_all(&interrupted);
    let _ = fs::remove_dir_all(&reference);
}

#[test]
fn cancelled_mid_sweep_then_resume_matches_uninterrupted_run() {
    let dir = scratch("cancel-mid-sweep");
    let reference = scratch("cancel-reference");
    let all = [21u64, 22, 23, 24];

    // Cancel from a watcher thread as soon as the first shard lands in the
    // manifest. Wherever the cancellation boundary falls, the assertions
    // below must hold.
    let interrupted = Campaign::new(&dir).with_workers(1).with_quiet(true);
    let token = interrupted.cancel.clone();
    let manifest_path = Manifest::path_in(&dir);
    let watcher = std::thread::spawn(move || {
        for _ in 0..10_000 {
            if fs::metadata(&manifest_path)
                .map(|m| m.len() > 0)
                .unwrap_or(false)
            {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        token.cancel();
    });
    let first = interrupted.run(shards(&all)).expect("interrupted run");
    watcher.join().expect("watcher");
    assert_eq!(first.misses + first.cancelled, all.len());
    assert_eq!(first.outcomes.len(), first.misses);

    // Resume with a fresh token: exactly the unfinished shards re-run.
    let resumed = Campaign::new(&dir).with_workers(2).with_quiet(true);
    let second = resumed.run(shards(&all)).expect("resumed run");
    assert_eq!(second.cancelled, 0);
    assert_eq!(
        second.hits, first.misses,
        "completed shards must replay as hits"
    );
    assert_eq!(
        second.misses, first.cancelled,
        "only unfinished shards re-run"
    );
    assert_eq!(second.outcomes.len(), all.len());

    let uninterrupted = Campaign::new(&reference).with_workers(2).with_quiet(true);
    uninterrupted.run(shards(&all)).expect("reference run");
    assert_eq!(
        record_files(&dir),
        record_files(&reference),
        "merged records after resume must be byte-identical to an uninterrupted run"
    );
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&reference);
}

#[test]
fn pre_cancelled_campaign_runs_nothing() {
    let dir = scratch("pre-cancelled");
    let campaign = Campaign::new(&dir).with_workers(2).with_quiet(true);
    campaign.cancel.cancel();
    let out = campaign.run(shards(&[31, 32])).expect("cancelled run");
    assert_eq!((out.hits, out.misses, out.cancelled), (0, 0, 2));
    assert!(out.outcomes.is_empty());
    assert!(Manifest::replay(&dir).expect("replay").is_empty());
    let _ = fs::remove_dir_all(&dir);
}
