//! The append-only campaign manifest.
//!
//! One JSON object per line, written as each shard finishes:
//!
//! ```text
//! {"shard":"(1) Channel 1, Multi-AP","hash":"9f…","wall_ms":412,"cache":"miss","path":"reports/9f….json"}
//! ```
//!
//! The manifest is the campaign's durable progress log. Replay is
//! deliberately forgiving: a process killed mid-append leaves a
//! truncated final line, which replay skips — the corresponding shard
//! simply re-runs. Replayed hashes are only trusted when the record
//! file they point at actually exists, so deleting a record (or the
//! whole `reports/` directory) also re-runs those shards.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One completed shard, as logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The shard's human-readable key (the experiment label).
    pub shard: String,
    /// The shard's content hash.
    pub hash: String,
    /// Wall-clock time the shard took, milliseconds (0 for cache hits).
    pub wall_ms: u64,
    /// Whether the shard was served from cache.
    pub cache_hit: bool,
    /// Record path relative to the cache directory.
    pub path: String,
}

impl ManifestEntry {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            r#"{{"shard":{},"hash":{},"wall_ms":{},"cache":{},"path":{}}}"#,
            quote(&self.shard),
            quote(&self.hash),
            self.wall_ms,
            if self.cache_hit {
                "\"hit\""
            } else {
                "\"miss\""
            },
            quote(&self.path),
        )
    }

    /// Parse one line; `None` for anything malformed (corrupt tail).
    pub fn parse_line(line: &str) -> Option<ManifestEntry> {
        let mut s = Scanner::new(line.trim());
        s.eat('{')?;
        let mut shard = None;
        let mut hash = None;
        let mut wall_ms = None;
        let mut cache = None;
        let mut path = None;
        loop {
            let key = s.string()?;
            s.eat(':')?;
            match key.as_str() {
                "shard" => shard = Some(s.string()?),
                "hash" => hash = Some(s.string()?),
                "wall_ms" => wall_ms = Some(s.integer()?),
                "cache" => cache = Some(s.string()?),
                "path" => path = Some(s.string()?),
                _ => return None,
            }
            match s.next_byte()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
        if !s.at_end() {
            return None;
        }
        let cache_hit = match cache?.as_str() {
            "hit" => true,
            "miss" => false,
            _ => return None,
        };
        Some(ManifestEntry {
            shard: shard?,
            hash: hash?,
            wall_ms: wall_ms?,
            cache_hit,
            path: path?,
        })
    }
}

/// One fleet scheduling event (assignment, completion, crash, retry,
/// respawn), as logged by multi-process campaigns.
///
/// Fleet notes share the manifest file with [`ManifestEntry`] lines but
/// lead with a `"fleet"` key, which [`ManifestEntry::parse_line`] rejects
/// — so [`Manifest::replay`] (the resume path) skips them untouched and an
/// interrupted campaign resumes exactly as before. They are the forensic
/// record: [`Manifest::replay_fleet`] reconstructs what the fleet did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetNote {
    /// Event kind: `"assigned"`, `"completed"`, `"worker-died"`,
    /// `"requeued"`, `"respawned"`, `"worker-ready"`.
    pub kind: String,
    /// The shard involved, when the event concerns one.
    pub shard: Option<String>,
    /// The worker slot involved, when the event concerns one.
    pub worker: Option<u64>,
    /// 1-based attempt number, for assignments and requeues.
    pub attempt: Option<u64>,
    /// Free-form cause or context (crash reasons, backoff).
    pub detail: Option<String>,
}

impl FleetNote {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = format!(r#"{{"fleet":{}"#, quote(&self.kind));
        if let Some(shard) = &self.shard {
            out.push_str(&format!(r#","shard":{}"#, quote(shard)));
        }
        if let Some(worker) = self.worker {
            out.push_str(&format!(r#","worker":{worker}"#));
        }
        if let Some(attempt) = self.attempt {
            out.push_str(&format!(r#","attempt":{attempt}"#));
        }
        if let Some(detail) = &self.detail {
            out.push_str(&format!(r#","detail":{}"#, quote(detail)));
        }
        out.push('}');
        out
    }

    /// Parse one line; `None` for non-fleet or malformed lines.
    pub fn parse_line(line: &str) -> Option<FleetNote> {
        let mut s = Scanner::new(line.trim());
        s.eat('{')?;
        let mut kind = None;
        let mut shard = None;
        let mut worker = None;
        let mut attempt = None;
        let mut detail = None;
        loop {
            let key = s.string()?;
            s.eat(':')?;
            match key.as_str() {
                "fleet" => kind = Some(s.string()?),
                "shard" => shard = Some(s.string()?),
                "worker" => worker = Some(s.integer()?),
                "attempt" => attempt = Some(s.integer()?),
                "detail" => detail = Some(s.string()?),
                _ => return None,
            }
            match s.next_byte()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
        if !s.at_end() {
            return None;
        }
        Some(FleetNote {
            kind: kind?,
            shard,
            worker,
            attempt,
            detail,
        })
    }
}

/// An open manifest, appendable from any worker thread.
#[derive(Debug)]
pub struct Manifest {
    file: Mutex<File>,
}

/// The manifest's file name inside a campaign cache directory.
pub const MANIFEST_FILE: &str = "manifest.jsonl";

impl Manifest {
    /// The manifest path for a cache directory.
    pub fn path_in(cache_dir: &Path) -> PathBuf {
        cache_dir.join(MANIFEST_FILE)
    }

    /// Open (creating if needed) for appending.
    pub fn open(cache_dir: &Path) -> io::Result<Manifest> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::path_in(cache_dir))?;
        Ok(Manifest {
            file: Mutex::new(file),
        })
    }

    /// Append one entry and flush, so a kill right after a shard
    /// completes still finds it logged on resume.
    pub fn append(&self, entry: &ManifestEntry) -> io::Result<()> {
        // Poison recovery: a worker that panicked mid-append leaves at
        // worst a truncated line, which `replay` already skips — keep
        // logging the shards that do finish.
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        writeln!(file, "{}", entry.to_line())?;
        file.flush()
    }

    /// Append one fleet scheduling note and flush.
    pub fn append_fleet(&self, note: &FleetNote) -> io::Result<()> {
        // Same poison recovery as `append`: a torn line is skipped on replay.
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        writeln!(file, "{}", note.to_line())?;
        file.flush()
    }

    /// Replay only the fleet scheduling notes (crash forensics; the
    /// resume path uses [`Manifest::replay`], which skips these lines).
    pub fn replay_fleet(cache_dir: &Path) -> io::Result<Vec<FleetNote>> {
        let file = match File::open(Self::path_in(cache_dir)) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut notes = Vec::new();
        for line in BufReader::new(file).lines() {
            let line = line?;
            if let Some(note) = FleetNote::parse_line(&line) {
                notes.push(note);
            }
        }
        Ok(notes)
    }

    /// Replay a manifest, skipping unparsable (truncated) lines. A
    /// missing manifest is an empty campaign, not an error.
    pub fn replay(cache_dir: &Path) -> io::Result<Vec<ManifestEntry>> {
        let file = match File::open(Self::path_in(cache_dir)) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut entries = Vec::new();
        for line in BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if let Some(entry) = ManifestEntry::parse_line(&line) {
                entries.push(entry);
            }
        }
        Ok(entries)
    }
}

/// JSON-quote a string (escapes `"`, `\`, and control characters).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal scanner for the flat string/number objects the manifest
/// emits.
struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Scanner<'a> {
        Scanner {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn next_byte(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, expected: char) -> Option<()> {
        (self.next_byte()? == expected as u8).then_some(())
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn string(&mut self) -> Option<String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.next_byte()? {
                b'"' => return Some(out),
                b'\\' => match self.next_byte()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + (self.next_byte()? as char).to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                b => {
                    // Re-scan from here as UTF-8: collect continuation bytes.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let end = start + len;
                    let chunk = self.bytes.get(start..end)?;
                    out.push_str(core::str::from_utf8(chunk).ok()?);
                    self.pos = end;
                }
            }
        }
    }

    fn integer(&mut self) -> Option<u64> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        core::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }
}

/// Byte length of a UTF-8 sequence from its first byte.
fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(shard: &str, hash: &str, hit: bool) -> ManifestEntry {
        ManifestEntry {
            shard: shard.to_string(),
            hash: hash.to_string(),
            wall_ms: 412,
            cache_hit: hit,
            path: format!("reports/{hash}.json"),
        }
    }

    #[test]
    fn lines_roundtrip() {
        for e in [
            entry("(1) Channel 1, Multi-AP", "9f00aa", false),
            entry(
                "weird \"label\" with \\ and \n newline — ünïcode",
                "00",
                true,
            ),
        ] {
            let line = e.to_line();
            assert_eq!(ManifestEntry::parse_line(&line), Some(e), "line: {line}");
        }
    }

    #[test]
    fn truncated_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!(
            "campaign-manifest-test-{}-truncated",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = Manifest::open(&dir).unwrap();
        m.append(&entry("a", "h1", false)).unwrap();
        m.append(&entry("b", "h2", true)).unwrap();
        drop(m);
        // Simulate a kill mid-append: a torn final line.
        let path = Manifest::path_in(&dir);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"shard\":\"c\",\"hash\":\"h3\",\"wall");
        std::fs::write(&path, text).unwrap();
        let replayed = Manifest::replay(&dir).unwrap();
        assert_eq!(
            replayed,
            vec![entry("a", "h1", false), entry("b", "h2", true)]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn note(kind: &str) -> FleetNote {
        FleetNote {
            kind: kind.to_string(),
            shard: Some("f6 = \"50%\"".to_string()),
            worker: Some(3),
            attempt: Some(2),
            detail: Some("worker died mid-shard: clean EOF (exit status: 86)".to_string()),
        }
    }

    #[test]
    fn fleet_notes_roundtrip() {
        for n in [
            note("worker-died"),
            FleetNote {
                kind: "worker-ready".to_string(),
                shard: None,
                worker: Some(0),
                attempt: None,
                detail: None,
            },
        ] {
            let line = n.to_line();
            assert_eq!(FleetNote::parse_line(&line), Some(n), "line: {line}");
        }
    }

    #[test]
    fn fleet_notes_are_invisible_to_resume_replay() {
        let dir = std::env::temp_dir().join(format!(
            "campaign-manifest-test-{}-fleet",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = Manifest::open(&dir).unwrap();
        m.append_fleet(&note("assigned")).unwrap();
        m.append(&entry("a", "h1", false)).unwrap();
        m.append_fleet(&note("worker-died")).unwrap();
        m.append_fleet(&note("requeued")).unwrap();
        m.append(&entry("b", "h2", true)).unwrap();
        drop(m);
        // Resume sees only the shard entries…
        assert_eq!(
            Manifest::replay(&dir).unwrap(),
            vec![entry("a", "h1", false), entry("b", "h2", true)]
        );
        // …while forensics sees only the fleet notes, in order.
        let kinds: Vec<String> = Manifest::replay_fleet(&dir)
            .unwrap()
            .into_iter()
            .map(|n| n.kind)
            .collect();
        assert_eq!(kinds, vec!["assigned", "worker-died", "requeued"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_empty() {
        let dir = std::env::temp_dir().join(format!(
            "campaign-manifest-test-{}-missing",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Manifest::replay(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
