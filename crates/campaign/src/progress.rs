//! Live progress and ETA reporting for a running campaign.
//!
//! Everything goes to **stderr**: stdout belongs to the experiment's
//! figure text, which must stay byte-identical between a fresh run and a
//! fully cached one (ci.sh asserts this), so the orchestrator never
//! writes a byte there.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Per-shard engine counters forwarded from
/// `spider_core::world::RunDiagnostics` (kept as a plain pair so this
/// module stays independent of the world's types).
pub type ShardDiagnostics = (u64, usize); // (events_delivered, peak_queue_depth)

/// Shared progress state; every worker calls [`Progress::shard_done`].
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    misses_done: AtomicUsize,
    miss_wall_ms: AtomicU64,
    events_delivered: AtomicU64,
    started: Instant,
    quiet: bool,
}

impl Progress {
    /// A tracker for `total` scheduled shards.
    pub fn new(total: usize, quiet: bool) -> Progress {
        Progress {
            total,
            done: AtomicUsize::new(0),
            misses_done: AtomicUsize::new(0),
            miss_wall_ms: AtomicU64::new(0),
            events_delivered: AtomicU64::new(0),
            started: Instant::now(),
            quiet,
        }
    }

    /// Record one finished shard and print its progress line. `diag` is
    /// `Some` only for freshly executed shards (cache hits replay a stored
    /// record and never touch the event queue, so they carry no counters).
    pub fn shard_done(
        &self,
        label: &str,
        hash: &str,
        cache_hit: bool,
        wall_ms: u64,
        workers: usize,
        diag: Option<ShardDiagnostics>,
    ) {
        let done = self.done.fetch_add(1, Ordering::SeqCst) + 1;
        if !cache_hit {
            self.misses_done.fetch_add(1, Ordering::SeqCst);
            self.miss_wall_ms.fetch_add(wall_ms, Ordering::SeqCst);
        }
        if let Some((events, _)) = diag {
            self.events_delivered.fetch_add(events, Ordering::SeqCst);
        }
        if self.quiet {
            return;
        }
        let eta = self.eta_secs(done, workers);
        let perf = match diag {
            Some((events, peak)) => format!(
                "  {} ev/s (depth {peak})",
                fmt_rate(events_per_sec(events, wall_ms))
            ),
            None => String::new(),
        };
        eprintln!(
            "  [{done:>3}/{:<3}] {} {:>6} ms  eta {:>5}  {}  {label}{perf}",
            self.total,
            if cache_hit { "hit " } else { "miss" },
            wall_ms,
            fmt_eta(eta),
            &hash[..12.min(hash.len())],
        );
    }

    /// Print a one-line fleet lifecycle note (worker crash, retry,
    /// respawn) on stderr, quiet-respecting like every other line here.
    pub fn fleet_note(&self, text: &str) {
        if self.quiet {
            return;
        }
        eprintln!("  fleet: {text}");
    }

    /// Estimated seconds left: mean wall time of completed misses, spread
    /// over the remaining shards and the worker count. `None` until a
    /// first miss has finished (hits are ~free and carry no signal).
    fn eta_secs(&self, done: usize, workers: usize) -> Option<f64> {
        let misses = self.misses_done.load(Ordering::SeqCst);
        if misses == 0 || done >= self.total {
            return if done >= self.total { Some(0.0) } else { None };
        }
        let mean_ms = self.miss_wall_ms.load(Ordering::SeqCst) as f64 / misses as f64;
        let remaining = (self.total - done) as f64;
        Some(mean_ms * remaining / (workers.max(1) as f64) / 1000.0)
    }

    /// Print the campaign summary line (stderr). Stable prefix — ci.sh
    /// greps for the `hits`/`misses` counts — so the aggregate engine
    /// throughput is appended *after* the existing suffix, and only when
    /// fresh shards actually ran.
    pub fn summary(&self, hits: usize, misses: usize, cancelled: usize) {
        if self.quiet {
            return;
        }
        let events = self.events_delivered.load(Ordering::SeqCst);
        let miss_ms = self.miss_wall_ms.load(Ordering::SeqCst);
        // Per-worker-second throughput: total events over summed shard
        // wall time (shards run in parallel, so this is the per-core
        // engine rate, not campaign-wall-clock rate).
        let perf = if misses > 0 && events > 0 {
            format!(
                " — {events} events, {} ev/s per worker",
                fmt_rate(events_per_sec(events, miss_ms))
            )
        } else {
            String::new()
        };
        eprintln!(
            "campaign: {} shards — {hits} hits, {misses} misses, {cancelled} cancelled in {:.1}s{perf}",
            self.total,
            self.started.elapsed().as_secs_f64()
        );
    }
}

/// Events per wall-clock second, `None` when the run was too fast to time.
fn events_per_sec(events: u64, wall_ms: u64) -> Option<f64> {
    (wall_ms > 0).then(|| events as f64 * 1000.0 / wall_ms as f64)
}

/// Render an events/sec rate compactly (`--` when untimeable).
fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        None => "--".to_string(),
        Some(r) if r >= 1_000_000.0 => format!("{:.1}M", r / 1_000_000.0),
        Some(r) if r >= 1_000.0 => format!("{:.0}k", r / 1_000.0),
        Some(r) => format!("{r:.0}"),
    }
}

/// Render an ETA compactly (`--` before any signal exists).
fn fmt_eta(eta: Option<f64>) -> String {
    match eta {
        None => "--".to_string(),
        Some(s) if s >= 90.0 => format!("{:.1}m", s / 60.0),
        Some(s) => format!("{s:.0}s"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_needs_a_first_miss() {
        let p = Progress::new(4, true);
        assert_eq!(p.eta_secs(0, 2), None);
        p.shard_done("a", "0123456789abcdef", true, 0, 2, None);
        assert_eq!(p.eta_secs(1, 2), None, "hits carry no ETA signal");
        p.shard_done("b", "0123456789abcdef", false, 1_000, 2, Some((50_000, 12)));
        let eta = p.eta_secs(2, 2).expect("miss seen");
        // Two shards left at ~1s each over 2 workers ≈ 1s.
        assert!((eta - 1.0).abs() < 1e-9, "eta {eta}");
    }

    #[test]
    fn eta_is_zero_when_done() {
        let p = Progress::new(1, true);
        p.shard_done("a", "00", false, 500, 1, Some((1_000, 3)));
        assert_eq!(p.eta_secs(1, 1), Some(0.0));
    }

    #[test]
    fn fmt_eta_units() {
        assert_eq!(fmt_eta(None), "--");
        assert_eq!(fmt_eta(Some(42.0)), "42s");
        assert_eq!(fmt_eta(Some(150.0)), "2.5m");
    }

    #[test]
    fn events_per_sec_handles_zero_wall_time() {
        assert_eq!(events_per_sec(10_000, 0), None);
        assert_eq!(events_per_sec(10_000, 500), Some(20_000.0));
    }

    #[test]
    fn fmt_rate_units() {
        assert_eq!(fmt_rate(None), "--");
        assert_eq!(fmt_rate(Some(950.0)), "950");
        assert_eq!(fmt_rate(Some(20_000.0)), "20k");
        assert_eq!(fmt_rate(Some(2_500_000.0)), "2.5M");
    }

    #[test]
    fn diagnostics_accumulate_into_the_summary_totals() {
        let p = Progress::new(3, true);
        p.shard_done("a", "00", false, 100, 1, Some((1_000, 4)));
        p.shard_done("b", "01", false, 100, 1, Some((2_000, 9)));
        p.shard_done("c", "02", true, 0, 1, None);
        assert_eq!(p.events_delivered.load(Ordering::SeqCst), 3_000);
        assert_eq!(p.miss_wall_ms.load(Ordering::SeqCst), 200);
    }
}
