//! Live progress and ETA reporting for a running campaign.
//!
//! Everything goes to **stderr**: stdout belongs to the experiment's
//! figure text, which must stay byte-identical between a fresh run and a
//! fully cached one (ci.sh asserts this), so the orchestrator never
//! writes a byte there.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Shared progress state; every worker calls [`Progress::shard_done`].
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    misses_done: AtomicUsize,
    miss_wall_ms: AtomicU64,
    started: Instant,
    quiet: bool,
}

impl Progress {
    /// A tracker for `total` scheduled shards.
    pub fn new(total: usize, quiet: bool) -> Progress {
        Progress {
            total,
            done: AtomicUsize::new(0),
            misses_done: AtomicUsize::new(0),
            miss_wall_ms: AtomicU64::new(0),
            started: Instant::now(),
            quiet,
        }
    }

    /// Record one finished shard and print its progress line.
    pub fn shard_done(
        &self,
        label: &str,
        hash: &str,
        cache_hit: bool,
        wall_ms: u64,
        workers: usize,
    ) {
        let done = self.done.fetch_add(1, Ordering::SeqCst) + 1;
        if !cache_hit {
            self.misses_done.fetch_add(1, Ordering::SeqCst);
            self.miss_wall_ms.fetch_add(wall_ms, Ordering::SeqCst);
        }
        if self.quiet {
            return;
        }
        let eta = self.eta_secs(done, workers);
        eprintln!(
            "  [{done:>3}/{:<3}] {} {:>6} ms  eta {:>5}  {}  {label}",
            self.total,
            if cache_hit { "hit " } else { "miss" },
            wall_ms,
            fmt_eta(eta),
            &hash[..12.min(hash.len())],
        );
    }

    /// Estimated seconds left: mean wall time of completed misses, spread
    /// over the remaining shards and the worker count. `None` until a
    /// first miss has finished (hits are ~free and carry no signal).
    fn eta_secs(&self, done: usize, workers: usize) -> Option<f64> {
        let misses = self.misses_done.load(Ordering::SeqCst);
        if misses == 0 || done >= self.total {
            return if done >= self.total { Some(0.0) } else { None };
        }
        let mean_ms = self.miss_wall_ms.load(Ordering::SeqCst) as f64 / misses as f64;
        let remaining = (self.total - done) as f64;
        Some(mean_ms * remaining / (workers.max(1) as f64) / 1000.0)
    }

    /// Print the campaign summary line (stderr). Stable prefix — ci.sh
    /// greps for the `hits`/`misses` counts.
    pub fn summary(&self, hits: usize, misses: usize, cancelled: usize) {
        if self.quiet {
            return;
        }
        eprintln!(
            "campaign: {} shards — {hits} hits, {misses} misses, {cancelled} cancelled in {:.1}s",
            self.total,
            self.started.elapsed().as_secs_f64()
        );
    }
}

/// Render an ETA compactly (`--` before any signal exists).
fn fmt_eta(eta: Option<f64>) -> String {
    match eta {
        None => "--".to_string(),
        Some(s) if s >= 90.0 => format!("{:.1}m", s / 60.0),
        Some(s) => format!("{s:.0}s"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_needs_a_first_miss() {
        let p = Progress::new(4, true);
        assert_eq!(p.eta_secs(0, 2), None);
        p.shard_done("a", "0123456789abcdef", true, 0, 2);
        assert_eq!(p.eta_secs(1, 2), None, "hits carry no ETA signal");
        p.shard_done("b", "0123456789abcdef", false, 1_000, 2);
        let eta = p.eta_secs(2, 2).expect("miss seen");
        // Two shards left at ~1s each over 2 workers ≈ 1s.
        assert!((eta - 1.0).abs() < 1e-9, "eta {eta}");
    }

    #[test]
    fn eta_is_zero_when_done() {
        let p = Progress::new(1, true);
        p.shard_done("a", "00", false, 500, 1);
        assert_eq!(p.eta_secs(1, 1), Some(0.0));
    }

    #[test]
    fn fmt_eta_units() {
        assert_eq!(fmt_eta(None), "--");
        assert_eq!(fmt_eta(Some(42.0)), "42s");
        assert_eq!(fmt_eta(Some(150.0)), "2.5m");
    }
}
