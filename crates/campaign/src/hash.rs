//! Content addressing for campaign shards.
//!
//! A shard's identity is the hash of its **full input**: a code
//! fingerprint (crate version + run-record schema revision) concatenated
//! with the complete `WorldConfig` — seed, sites, motion, driver policy,
//! TCP parameters, duration, workload — rendered through its `Debug`
//! implementation. `Debug` output is a pure function of the
//! configuration (every field is a struct, enum, scalar, or `Vec`; no
//! hash maps, no addresses), and Rust formats floats in their
//! shortest-roundtrip form, so the rendering is deterministic across
//! runs and platforms. Any change to any field — a different seed, one
//! more AP, a 1 ms timer tweak — therefore changes the hash and misses
//! the cache.

use spider_core::report::RUN_RECORD_VERSION;
use spider_core::world::WorldConfig;

/// The code fingerprint folded into every shard hash. Bump
/// [`CACHE_REV`] when simulator behaviour changes in a way that should
/// invalidate previously cached run records.
pub fn code_fingerprint() -> String {
    format!(
        "spider-campaign/{}/record-v{}/rev-{}",
        env!("CARGO_PKG_VERSION"),
        RUN_RECORD_VERSION,
        CACHE_REV
    )
}

/// Manual cache-invalidation knob: bump on behavioural simulator changes
/// that `WorldConfig` cannot express (the hermetic workspace has no
/// build-graph hash to lean on).
pub const CACHE_REV: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` from an explicit basis.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// 128-bit content hash as 32 lowercase hex characters.
///
/// Two chained FNV-1a-64 passes: the second pass is seeded with the
/// first's output, so the halves are not independent hashes of the same
/// basis (which would collide in pairs whenever the first 8 bytes
/// collide).
pub fn content_hash(bytes: &[u8]) -> String {
    let lo = fnv1a(bytes, FNV_OFFSET);
    let hi = fnv1a(bytes, lo ^ 0x6c62_272e_07bb_0142);
    format!("{hi:016x}{lo:016x}")
}

/// The content-addressed key of one shard.
pub fn shard_hash(world: &WorldConfig) -> String {
    let preimage = format!("{}\u{0}{:?}", code_fingerprint(), world);
    content_hash(preimage.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::deployment::ApSite;
    use mobility::geometry::Point;
    use sim_engine::time::Duration;
    use spider_core::config::SpiderConfig;
    use spider_core::world::{ClientMotion, WorldConfig};
    use wifi_mac::channel::Channel;

    fn world(seed: u64) -> WorldConfig {
        let site = ApSite {
            id: 1,
            position: Point::new(0.0, 0.0),
            channel: Channel::CH1,
            backhaul_bps: 2_000_000,
            dhcp_delay_min: Duration::from_millis(100),
            dhcp_delay_max: Duration::from_millis(300),
        };
        WorldConfig::new(
            seed,
            vec![site],
            ClientMotion::Fixed(Point::new(0.0, 10.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(15),
        )
    }

    #[test]
    fn hash_is_stable_for_identical_configs() {
        assert_eq!(shard_hash(&world(5)), shard_hash(&world(5)));
    }

    #[test]
    fn seed_changes_the_hash() {
        assert_ne!(shard_hash(&world(5)), shard_hash(&world(6)));
    }

    type Mutation = Box<dyn Fn(&mut SpiderConfig)>;

    #[test]
    fn every_spider_config_field_changes_the_hash() {
        let base = world(5);
        let base_hash = shard_hash(&base);
        let mutations: Vec<Mutation> = vec![
            Box::new(|s| {
                s.schedule =
                    spider_core::config::SchedulePolicy::equal_three(Duration::from_millis(200))
            }),
            Box::new(|s| s.max_ifaces = 1),
            Box::new(|s| s.single_ap = true),
            Box::new(|s| s.selection = spider_core::config::SelectionPolicy::BestRssi),
            Box::new(|s| s.lease_cache = false),
            Box::new(|s| s.ap_loss_timeout = Duration::from_secs(4)),
            Box::new(|s| s.evaluate_every = Duration::from_millis(201)),
            Box::new(|s| s.retry_backoff = Duration::from_secs(6)),
            Box::new(|s| s.min_join_rssi_dbm = -84.0),
            Box::new(|s| s.join_setup_delay = Duration::from_millis(1)),
        ];
        for (i, mutate) in mutations.iter().enumerate() {
            let mut cfg = base.clone();
            mutate(&mut cfg.spider);
            assert_ne!(
                shard_hash(&cfg),
                base_hash,
                "mutation {i} did not change the shard hash"
            );
        }
    }

    #[test]
    fn world_level_fields_change_the_hash() {
        let base = world(5);
        let base_hash = shard_hash(&base);
        let mut longer = base.clone();
        longer.duration = Duration::from_secs(16);
        assert_ne!(shard_hash(&longer), base_hash);
        let mut moved = base.clone();
        moved.motion = ClientMotion::Fixed(Point::new(0.0, 11.0));
        assert_ne!(shard_hash(&moved), base_hash);
        let mut more_sites = base.clone();
        more_sites.sites.push(more_sites.sites[0].clone());
        more_sites.sites[1].id = 2;
        assert_ne!(shard_hash(&more_sites), base_hash);
    }

    #[test]
    fn content_hash_is_hex_and_spreads() {
        let h = content_hash(b"hello");
        assert_eq!(h.len(), 32);
        assert!(h.bytes().all(|b| b.is_ascii_hexdigit()));
        let distinct: std::collections::HashSet<String> = (0..1_000u32)
            .map(|i| content_hash(&i.to_le_bytes()))
            .collect();
        assert_eq!(distinct.len(), 1_000);
    }
}
