//! # campaign
//!
//! A resumable, content-addressed experiment-campaign orchestrator.
//!
//! The paper's evaluation (§4, Tables 1–4, Figs. 9–14) is a grid of
//! repeated vehicular runs — scenario × seed × scale × driver
//! configuration. Re-executing that grid from scratch for every figure
//! regeneration wastes exactly the work a deterministic simulator makes
//! cacheable: the same `WorldConfig` always produces the same
//! `RunResult`. This crate turns the grid into a **campaign**:
//!
//! 1. **Shard** — each `(label, WorldConfig)` pair is one shard, keyed by
//!    the content hash of its full input (code fingerprint + every
//!    config field; see [`hash`]).
//! 2. **Cache** — completed shards live as full-fidelity
//!    [`spider_core::report::RunRecord`] JSON under
//!    `<cache-dir>/reports/<hash>.json` ([`cache`]); a hit reconstructs
//!    the `RunResult` bit-exactly, so regenerated figure text is
//!    byte-identical to a fresh run's.
//! 3. **Schedule** — uncached shards fan out over
//!    `sim_engine::par::map_cancellable`: dynamic claiming from a shared
//!    counter, cooperative cancellation, live progress/ETA on stderr
//!    ([`progress`]).
//! 4. **Manifest** — every completed shard is appended to
//!    `<cache-dir>/manifest.jsonl` as it finishes ([`manifest`]); an
//!    interrupted campaign resumes by replaying the manifest and
//!    re-running only the shards it is missing.
//!
//! ```no_run
//! use campaign::Campaign;
//! # fn shards() -> Vec<(String, spider_core::world::WorldConfig)> { vec![] }
//! let outcome = Campaign::new("target/campaign").run(shards()).unwrap();
//! for shard in &outcome.outcomes {
//!     println!("{}: {} KB/s (cached: {})",
//!              shard.label,
//!              shard.result.avg_throughput_kbps(),
//!              shard.cache_hit);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hash;
pub mod manifest;
pub mod progress;

use std::collections::BTreeSet;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

use fleet::scheduler::{run_shards, FleetConfig, FleetEvent, ShardJob};
use sim_engine::par::{self, CancelToken};
use spider_core::world::{run_with_diagnostics, RunResult, WorldConfig};

use cache::RecordCache;
use manifest::{FleetNote, Manifest, ManifestEntry};
use progress::Progress;

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "target/campaign";

/// How uncached shards are executed.
#[derive(Debug, Clone)]
pub enum ExecMode {
    /// Threads in this process over `sim_engine::par` (the default).
    InProcess,
    /// A fleet of worker OS processes speaking the framed protocol in
    /// `fleet::proto`; crashes are retried, so one bad shard cannot take
    /// the whole campaign down. Records flow through the same cache and
    /// manifest as in-process runs and are byte-identical to them.
    Process {
        /// Worker executable — normally `std::env::current_exe()`.
        program: PathBuf,
        /// Arguments that put the executable in worker mode
        /// (e.g. `["--worker"]`).
        args: Vec<String>,
    },
}

/// A campaign runner: where to cache, how wide to fan out, how to stop.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Cache directory (records + manifest).
    pub cache_dir: PathBuf,
    /// Worker threads (or worker processes) for uncached shards.
    pub workers: usize,
    /// Suppress progress/summary lines (tests).
    pub quiet: bool,
    /// Cooperative cancellation; clone it and call `cancel()` from
    /// anywhere to stop the campaign at the next shard boundary.
    pub cancel: CancelToken,
    /// How misses are executed.
    pub exec: ExecMode,
}

/// One completed shard.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The shard's label (the experiment's configuration name).
    pub label: String,
    /// The shard's content hash.
    pub hash: String,
    /// Served from cache?
    pub cache_hit: bool,
    /// Wall-clock milliseconds this shard took (≈0 for hits).
    pub wall_ms: u64,
    /// Where the shard's run record lives.
    pub record_path: PathBuf,
    /// The (fresh or reconstructed) run.
    pub result: RunResult,
}

/// What a campaign did.
#[derive(Debug)]
pub struct CampaignRun {
    /// Completed shards, in the order they were submitted.
    pub outcomes: Vec<ShardOutcome>,
    /// Shards served from cache.
    pub hits: usize,
    /// Shards executed this run.
    pub misses: usize,
    /// Shards skipped because the campaign was cancelled; resume by
    /// running the same campaign again.
    pub cancelled: usize,
}

impl CampaignRun {
    /// The completed shards as `(label, result)` pairs — the shape the
    /// experiment harness consumed before campaigns existed.
    ///
    /// # Panics
    /// Panics if the campaign was cancelled (callers that handle partial
    /// campaigns should read `outcomes` directly).
    pub fn into_results(self) -> Vec<(String, RunResult)> {
        assert!(
            self.cancelled == 0,
            "campaign cancelled with {} shard(s) unfinished",
            self.cancelled
        );
        self.outcomes
            .into_iter()
            .map(|o| (o.label, o.result))
            .collect()
    }
}

impl Campaign {
    /// A campaign over `cache_dir` with default width (all cores) and
    /// progress reporting on.
    pub fn new(cache_dir: impl Into<PathBuf>) -> Campaign {
        Campaign {
            cache_dir: cache_dir.into(),
            workers: par::available_workers(),
            quiet: false,
            cancel: CancelToken::new(),
            exec: ExecMode::InProcess,
        }
    }

    /// Override the worker count (1 = sequential).
    pub fn with_workers(mut self, workers: usize) -> Campaign {
        self.workers = workers.max(1);
        self
    }

    /// Suppress stderr progress output.
    pub fn with_quiet(mut self, quiet: bool) -> Campaign {
        self.quiet = quiet;
        self
    }

    /// Choose how uncached shards execute (threads vs worker processes).
    pub fn with_exec(mut self, exec: ExecMode) -> Campaign {
        self.exec = exec;
        self
    }

    /// Run a sweep: serve cached shards, execute the rest, log everything.
    ///
    /// Shard labels must be unique within one call (they are the
    /// human-readable manifest keys); hashes make the actual cache
    /// identity, so duplicate *configurations* under different labels
    /// are fine (the second is a hit).
    pub fn run(&self, shards: Vec<(String, WorldConfig)>) -> io::Result<CampaignRun> {
        let cache = RecordCache::open(&self.cache_dir)?;
        // Resume: a shard counts as done when the manifest says so AND its
        // record file still exists (the record is the artifact; the
        // manifest alone is just a claim).
        let replayed: BTreeSet<String> = Manifest::replay(&self.cache_dir)?
            .into_iter()
            .map(|e| e.hash)
            .filter(|h| cache.contains(h))
            .collect();
        let manifest = Manifest::open(&self.cache_dir)?;
        let progress = Progress::new(shards.len(), self.quiet);

        let mut slots: Vec<Option<ShardOutcome>> = Vec::with_capacity(shards.len());
        slots.resize_with(shards.len(), || None);
        let mut pending: Vec<(usize, String, String, WorldConfig)> = Vec::new();

        for (index, (label, world)) in shards.into_iter().enumerate() {
            let hash = hash::shard_hash(&world);
            let known = replayed.contains(&hash) || cache.contains(&hash);
            let loaded = if known { cache.load(&hash) } else { None };
            match loaded {
                Some(result) => {
                    let entry = ManifestEntry {
                        shard: label.clone(),
                        hash: hash.clone(),
                        wall_ms: 0,
                        cache_hit: true,
                        path: record_rel_path(&hash),
                    };
                    manifest.append(&entry)?;
                    progress.shard_done(&label, &hash, true, 0, self.workers, None);
                    slots[index] = Some(ShardOutcome {
                        label,
                        record_path: cache.record_path(&hash),
                        hash,
                        cache_hit: true,
                        wall_ms: 0,
                        result,
                    });
                }
                // Unknown hash — or a corrupt/stale record, which re-runs.
                None => pending.push((index, label, hash, world)),
            }
        }

        let hits = slots.iter().flatten().count();
        let scheduled = pending.len();
        let cancelled = match &self.exec {
            ExecMode::InProcess => {
                self.run_in_process(pending, &cache, &manifest, &progress, &mut slots)?
            }
            ExecMode::Process { program, args } => self.run_process(
                program.clone(),
                args.clone(),
                pending,
                &cache,
                &manifest,
                &progress,
                &mut slots,
            )?,
        };
        let misses = scheduled - cancelled;
        progress.summary(hits, misses, cancelled);
        Ok(CampaignRun {
            outcomes: slots.into_iter().flatten().collect(),
            hits,
            misses,
            cancelled,
        })
    }

    /// Execute `pending` on a thread pool in this process. Returns the
    /// number of shards skipped by cancellation.
    fn run_in_process(
        &self,
        pending: Vec<(usize, String, String, WorldConfig)>,
        cache: &RecordCache,
        manifest: &Manifest,
        progress: &Progress,
        slots: &mut [Option<ShardOutcome>],
    ) -> io::Result<usize> {
        let executed = par::map_cancellable(
            pending,
            self.workers,
            &self.cancel,
            move |_, (index, label, hash, world)| {
                let started = Instant::now();
                let (result, diag) = run_with_diagnostics(world);
                let wall_ms = started.elapsed().as_millis() as u64;
                let record_path = cache.store(&hash, &result)?;
                manifest.append(&ManifestEntry {
                    shard: label.clone(),
                    hash: hash.clone(),
                    wall_ms,
                    cache_hit: false,
                    path: record_rel_path(&hash),
                })?;
                progress.shard_done(
                    &label,
                    &hash,
                    false,
                    wall_ms,
                    self.workers,
                    Some((diag.events_delivered, diag.peak_queue_depth)),
                );
                Ok::<_, io::Error>((
                    index,
                    ShardOutcome {
                        label,
                        hash,
                        cache_hit: false,
                        wall_ms,
                        record_path,
                        result,
                    },
                ))
            },
        );

        let mut cancelled = 0usize;
        for slot in executed {
            match slot {
                Some(Ok((index, outcome))) => slots[index] = Some(outcome),
                Some(Err(e)) => return Err(e),
                None => cancelled += 1,
            }
        }
        Ok(cancelled)
    }

    /// Execute `pending` on a fleet of worker processes. Every scheduler
    /// transition lands in the manifest as a fleet note (forensics), and
    /// every completed shard is stored + manifested the moment it arrives,
    /// so a campaign killed mid-fleet resumes exactly like an in-process
    /// one. Returns the number of shards skipped by cancellation.
    #[allow(clippy::too_many_arguments)]
    fn run_process(
        &self,
        program: PathBuf,
        args: Vec<String>,
        pending: Vec<(usize, String, String, WorldConfig)>,
        cache: &RecordCache,
        manifest: &Manifest,
        progress: &Progress,
        slots: &mut [Option<ShardOutcome>],
    ) -> io::Result<usize> {
        let scheduled = pending.len();
        if scheduled == 0 {
            return Ok(0);
        }
        // Job order mirrors `pending`; `ShardDone::index` indexes both.
        let meta: Vec<(usize, String, String)> = pending
            .iter()
            .map(|(index, label, hash, _)| (*index, label.clone(), hash.clone()))
            .collect();
        let jobs: Vec<ShardJob> = pending
            .into_iter()
            .map(|(_, label, _, world)| ShardJob { name: label, world })
            .collect();
        let mut cfg = FleetConfig::new(program, self.workers, hash::code_fingerprint());
        cfg.args = args;

        let note = |kind: &str| FleetNote {
            kind: kind.to_string(),
            shard: None,
            worker: None,
            attempt: None,
            detail: None,
        };
        let run = run_shards(&cfg, &jobs, &self.cancel, |event| {
            match event {
                FleetEvent::WorkerReady { worker } => {
                    manifest.append_fleet(&FleetNote {
                        worker: Some(*worker as u64),
                        ..note("worker-ready")
                    })?;
                }
                FleetEvent::Assigned {
                    worker,
                    shard,
                    attempt,
                } => {
                    manifest.append_fleet(&FleetNote {
                        shard: Some(shard.clone()),
                        worker: Some(*worker as u64),
                        attempt: Some(u64::from(*attempt)),
                        ..note("assigned")
                    })?;
                }
                FleetEvent::Completed {
                    worker,
                    shard,
                    done,
                } => {
                    let (index, label, hash) = &meta[done.index];
                    let (record_path, result) = cache.store_json(hash, &done.record_json)?;
                    manifest.append(&ManifestEntry {
                        shard: label.clone(),
                        hash: hash.clone(),
                        wall_ms: done.wall_ms,
                        cache_hit: false,
                        path: record_rel_path(hash),
                    })?;
                    manifest.append_fleet(&FleetNote {
                        shard: Some(shard.clone()),
                        worker: Some(*worker as u64),
                        attempt: Some(u64::from(done.attempts)),
                        ..note("completed")
                    })?;
                    progress.shard_done(
                        label,
                        hash,
                        false,
                        done.wall_ms,
                        self.workers,
                        Some((done.events_delivered, done.peak_queue_depth as usize)),
                    );
                    slots[*index] = Some(ShardOutcome {
                        label: label.clone(),
                        hash: hash.clone(),
                        cache_hit: false,
                        wall_ms: done.wall_ms,
                        record_path,
                        result,
                    });
                }
                FleetEvent::WorkerDied {
                    worker,
                    shard,
                    reason,
                } => {
                    manifest.append_fleet(&FleetNote {
                        shard: shard.clone(),
                        worker: Some(*worker as u64),
                        detail: Some(reason.clone()),
                        ..note("worker-died")
                    })?;
                    progress.fleet_note(&match shard {
                        Some(s) => format!("worker {worker} died on {s:?}: {reason}"),
                        None => format!("worker {worker} died: {reason}"),
                    });
                }
                FleetEvent::Requeued { shard, attempt } => {
                    manifest.append_fleet(&FleetNote {
                        shard: Some(shard.clone()),
                        attempt: Some(u64::from(*attempt)),
                        ..note("requeued")
                    })?;
                    progress.fleet_note(&format!("requeued {shard:?} (attempt {attempt})"));
                }
                FleetEvent::Respawned { worker, backoff_ms } => {
                    manifest.append_fleet(&FleetNote {
                        worker: Some(*worker as u64),
                        detail: Some(format!("after {backoff_ms} ms backoff")),
                        ..note("respawned")
                    })?;
                    progress.fleet_note(&format!(
                        "respawned worker {worker} after {backoff_ms} ms backoff"
                    ));
                }
            }
            Ok(())
        })
        .map_err(|e| io::Error::other(e.to_string()))?;
        Ok(scheduled - run.done.len())
    }
}

/// A record's path relative to the cache directory (manifest form).
fn record_rel_path(hash: &str) -> String {
    format!("reports/{hash}.json")
}
