//! The content-addressed run-record store.
//!
//! Layout under the campaign directory:
//!
//! ```text
//! <cache-dir>/
//!   reports/<hash>.json    one RunRecord per shard input hash
//!   manifest.jsonl         append-only campaign log (see `manifest`)
//! ```
//!
//! Records are written atomically (temp file + rename in the same
//! directory), so a killed campaign never leaves a half-written record:
//! after an interrupt the file either exists complete or not at all,
//! which is exactly the property resume needs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use spider_core::report::RunRecord;
use spider_core::world::RunResult;

/// Handle on a campaign cache directory.
#[derive(Debug, Clone)]
pub struct RecordCache {
    reports: PathBuf,
}

impl RecordCache {
    /// Open (creating if needed) the cache under `root`.
    pub fn open(root: &Path) -> io::Result<RecordCache> {
        let reports = root.join("reports");
        fs::create_dir_all(&reports)?;
        Ok(RecordCache { reports })
    }

    /// Where the record for `hash` lives (whether or not it exists yet).
    pub fn record_path(&self, hash: &str) -> PathBuf {
        self.reports.join(format!("{hash}.json"))
    }

    /// Is a record for `hash` present on disk?
    pub fn contains(&self, hash: &str) -> bool {
        self.record_path(hash).is_file()
    }

    /// Load the cached run for `hash`. Returns `None` when the record is
    /// absent or fails to parse (a corrupt or stale-schema record is
    /// treated as a miss and will be overwritten by the fresh run).
    pub fn load(&self, hash: &str) -> Option<RunResult> {
        let text = fs::read_to_string(self.record_path(hash)).ok()?;
        RunRecord::from_json(&text).ok()
    }

    /// Store `result` under `hash` atomically; returns the record path.
    pub fn store(&self, hash: &str, result: &RunResult) -> io::Result<PathBuf> {
        let json = RunRecord::to_json(result)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.write_atomic(hash, &json)?;
        Ok(self.record_path(hash))
    }

    /// Store record JSON produced elsewhere (a fleet worker) under `hash`.
    ///
    /// The text is parsed first — an unparsable record is rejected, never
    /// cached — and then written **byte-for-byte**: workers and in-process
    /// runs emit identical JSON for identical shards (the cross-process
    /// determinism contract), and storing the worker's exact bytes keeps
    /// that comparable on disk. Returns the path and the parsed result.
    pub fn store_json(&self, hash: &str, json: &str) -> io::Result<(PathBuf, RunResult)> {
        let result = RunRecord::from_json(json).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker record for {hash} unparsable: {e:?}"),
            )
        })?;
        self.write_atomic(hash, json)?;
        Ok((self.record_path(hash), result))
    }

    /// Temp-file + same-directory rename; concurrent writers (threads or
    /// whole processes) each use a distinct temp name, and the last rename
    /// wins with the file complete either way.
    fn write_atomic(&self, hash: &str, json: &str) -> io::Result<()> {
        let tmp = self
            .reports
            .join(format!(".tmp-{hash}-{}", std::process::id()));
        fs::write(&tmp, json)?;
        fs::rename(&tmp, self.record_path(hash))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::deployment::ApSite;
    use mobility::geometry::Point;
    use sim_engine::time::Duration;
    use spider_core::config::SpiderConfig;
    use spider_core::world::{run, ClientMotion, WorldConfig};
    use wifi_mac::channel::Channel;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("campaign-cache-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_run() -> RunResult {
        let site = ApSite {
            id: 1,
            position: Point::new(0.0, 0.0),
            channel: Channel::CH1,
            backhaul_bps: 2_000_000,
            dhcp_delay_min: Duration::from_millis(100),
            dhcp_delay_max: Duration::from_millis(300),
        };
        run(WorldConfig::new(
            5,
            vec![site],
            ClientMotion::Fixed(Point::new(0.0, 10.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(10),
        ))
    }

    #[test]
    fn store_then_load_roundtrips_exactly() {
        let root = scratch("roundtrip");
        let cache = RecordCache::open(&root).expect("open");
        let result = tiny_run();
        assert!(!cache.contains("abc"));
        let path = cache.store("abc", &result).expect("store");
        assert!(cache.contains("abc"));
        assert_eq!(path, cache.record_path("abc"));
        let loaded = cache.load("abc").expect("load");
        assert_eq!(
            RunRecord::to_json(&loaded).unwrap(),
            RunRecord::to_json(&result).unwrap()
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_records_read_as_misses() {
        let root = scratch("corrupt");
        let cache = RecordCache::open(&root).expect("open");
        fs::write(cache.record_path("bad"), "{\"v\":1,\"truncated").expect("write");
        assert!(cache.contains("bad"));
        assert!(cache.load("bad").is_none());
        let _ = fs::remove_dir_all(&root);
    }
}
