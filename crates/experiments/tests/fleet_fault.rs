//! End-to-end fault injection through the real `experiments` binary:
//! a fig5 campaign in `--exec process` mode survives a worker killed
//! mid-shard and still produces byte-identical figure text.

use std::path::Path;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

fn run_fig5(dir: &Path, cache: &str, extra: &[&str], env: &[(&str, String)]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.current_dir(dir)
        .args(["fig5", "--workers", "4", "--cache-dir", cache])
        .args(extra);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn experiments")
}

fn report_names(dir: &Path, cache: &str) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir.join(cache).join("reports"))
        .expect("reports dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    names.sort();
    names
}

#[test]
fn process_exec_survives_a_worker_crash_with_identical_output() {
    let dir = std::env::temp_dir().join(format!("experiments-fleet-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // Reference: the same campaign in threads.
    let inproc = run_fig5(&dir, "cache-inproc", &[], &[]);
    assert!(inproc.status.success(), "in-process run failed");

    // Process mode with a worker told to exit mid-way through the "50%"
    // shard. The marker file makes the fault fire exactly once, so the
    // retry on the respawned worker completes.
    let marker = dir.join("fault-marker");
    let fault = format!("exit:50%:{}", marker.display());
    let faulty = run_fig5(
        &dir,
        "cache-fleet",
        &["--exec", "process"],
        &[("FLEET_FAULT", fault)],
    );
    assert!(
        faulty.status.success(),
        "process-exec run failed despite retry budget:\n{}",
        String::from_utf8_lossy(&faulty.stderr)
    );
    assert!(marker.exists(), "the injected fault never fired");
    assert_eq!(
        faulty.stdout, inproc.stdout,
        "figure text diverged between exec modes"
    );

    // The crash and the retry are on the forensic record.
    let manifest =
        std::fs::read_to_string(dir.join("cache-fleet/manifest.jsonl")).expect("manifest");
    assert!(
        manifest.contains(r#"{"fleet":"worker-died","shard":"50%""#),
        "missing worker-died note:\n{manifest}"
    );
    assert!(
        manifest.contains(r#"{"fleet":"requeued","shard":"50%","attempt":2}"#),
        "missing requeue note:\n{manifest}"
    );

    // Both modes produced the same content-addressed cache entries.
    assert_eq!(
        report_names(&dir, "cache-fleet"),
        report_names(&dir, "cache-inproc"),
        "cache entries diverged between exec modes"
    );

    // A second process-mode pass replays entirely from cache, still
    // byte-identical on stdout.
    let cached = run_fig5(&dir, "cache-fleet", &["--exec", "process"], &[]);
    assert!(cached.status.success(), "cached re-run failed");
    assert_eq!(cached.stdout, inproc.stdout, "cached replay diverged");
    assert!(
        String::from_utf8_lossy(&cached.stderr).contains("4 hits, 0 misses"),
        "second pass was not fully cached"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
