//! Shared scenario builders and output helpers for the experiment harness.

use mobility::deployment::{deploy_along, ApSite, DeploymentConfig};
use mobility::geometry::Point;
use mobility::route::{Route, Vehicle};
use sim_engine::rng::Rng;
use sim_engine::stats::Samples;
use sim_engine::time::{Duration, Instant};
use spider_core::config::{SchedulePolicy, SpiderConfig};
use spider_core::world::{run, ClientMotion, RunResult, WorldConfig};
use wifi_mac::channel::Channel;

/// The default experiment seed; `--seed` overrides.
pub const DEFAULT_SEED: u64 = 20111206; // CoNEXT 2011 opening day

/// Scale factor for run lengths: 1 = quick (default), larger = closer to
/// the paper's 30–60 minute drives.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier applied to run durations.
    pub factor: u64,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    pub fn duration(&self, base_secs: u64) -> Duration {
        Duration::from_secs(base_secs * self.factor)
    }
}

/// The Amherst-like downtown loop: a ~3 km rectangular block circuit.
pub fn amherst_route() -> Route {
    Route::rectangle(1_000.0, 500.0)
}

/// Deploy an Amherst-like AP population along the loop.
pub fn amherst_sites(seed: u64) -> Vec<ApSite> {
    let mut rng = Rng::new(seed ^ 0xA4E);
    deploy_along(&amherst_route(), &DeploymentConfig::amherst(), &mut rng)
}

/// Deploy a Boston-like (denser, Cabernet channel mix) population.
pub fn boston_sites(seed: u64) -> Vec<ApSite> {
    let mut rng = Rng::new(seed ^ 0xB05);
    deploy_along(&amherst_route(), &DeploymentConfig::boston(), &mut rng)
}

/// A vehicular world: drive the Amherst loop at `speed` m/s.
pub fn vehicular_world(
    seed: u64,
    sites: Vec<ApSite>,
    spider: SpiderConfig,
    duration: Duration,
    speed: f64,
) -> WorldConfig {
    let vehicle = Vehicle::new(amherst_route(), speed, Instant::ZERO);
    WorldConfig::new(seed, sites, ClientMotion::Route(vehicle), spider, duration)
}

/// A static lab world: the client sits `dist` metres from the APs. The
/// wired path matches the paper's indoor setup ("400 ms ≈ two typical
/// RTTs" puts the server RTT near 200 ms — a 2011 DSL-grade path).
pub fn lab_world(
    seed: u64,
    sites: Vec<ApSite>,
    spider: SpiderConfig,
    duration: Duration,
    dist: f64,
) -> WorldConfig {
    let mut cfg = WorldConfig::new(
        seed,
        sites,
        ClientMotion::Fixed(Point::new(0.0, dist)),
        spider,
        duration,
    );
    cfg.backhaul_latency = Duration::from_millis(90);
    cfg
}

/// A lab AP site at `x` on `channel` with the given backhaul and a fast,
/// predictable DHCP server (lab APs answer quickly).
pub fn lab_site(id: u32, x: f64, channel: Channel, backhaul_bps: u64) -> ApSite {
    ApSite {
        id,
        position: Point::new(x, 0.0),
        channel,
        backhaul_bps,
        dhcp_delay_min: Duration::from_millis(50),
        dhcp_delay_max: Duration::from_millis(200),
    }
}

/// The §2.2 schedule: fraction `f` of `period` on `primary`, the remainder
/// split evenly over the other two orthogonal channels.
pub fn split_schedule(primary: Channel, f: f64, period: Duration) -> SchedulePolicy {
    assert!((0.0..=1.0).contains(&f), "bad fraction {f}");
    if f >= 0.999 {
        return SchedulePolicy::SingleChannel(primary);
    }
    let others: Vec<Channel> = wifi_mac::ORTHOGONAL
        .iter()
        .copied()
        .filter(|c| *c != primary)
        .collect();
    let primary_slice = period.mul_f64(f);
    let other_slice = period.mul_f64((1.0 - f) / 2.0);
    let mut slices = vec![(primary, primary_slice)];
    for c in others {
        slices.push((c, other_slice));
    }
    // Zero-length slices degenerate; drop them.
    slices.retain(|(_, d)| !d.is_zero());
    SchedulePolicy::MultiChannel { slices }
}

/// Where JSON reports are written, when `--json <dir>` was passed.
pub static JSON_DIR: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();

/// Worker-pool width, when `--workers N` was passed (default: all cores).
pub static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

/// Campaign cache override: `Some(dir)` from `--cache-dir`, `None` from
/// `--no-cache`. Unset means the default `target/campaign`.
pub static CACHE_DIR: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();

/// How `--exec` asked uncached shards to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecChoice {
    /// Threads in this process (the default).
    InProcess,
    /// Worker OS processes (this binary re-invoked with `--worker`).
    Process,
}

/// Execution mode, when `--exec` was passed (default: in-process).
pub static EXEC: std::sync::OnceLock<ExecChoice> = std::sync::OnceLock::new();

/// The `ExecMode` the campaign should use, honouring `--exec`. Process
/// mode needs this binary's own path; if that cannot be resolved the
/// campaign falls back to threads with a warning rather than failing the
/// figure run.
fn exec_mode() -> campaign::ExecMode {
    match EXEC.get().copied().unwrap_or(ExecChoice::InProcess) {
        ExecChoice::InProcess => campaign::ExecMode::InProcess,
        ExecChoice::Process => match std::env::current_exe() {
            Ok(program) => campaign::ExecMode::Process {
                program,
                args: vec!["--worker".to_string()],
            },
            Err(e) => {
                eprintln!("warning: cannot resolve own executable ({e}); using threads");
                campaign::ExecMode::InProcess
            }
        },
    }
}

fn export_json(label: &str, result: &RunResult) {
    let Some(Some(dir)) = JSON_DIR.get().map(|d| d.as_ref()) else {
        return;
    };
    let file = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>();
    let path = dir.join(format!("{file}.json"));
    let report = spider_core::report::Report::from_run(result);
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Run many labelled configurations through the campaign orchestrator:
/// shards already in the content-addressed cache (`target/campaign` by
/// default, `--cache-dir` to move it, `--no-cache` to bypass) replay
/// instantly, the rest fan out over the in-tree worker pool (`--workers N`
/// caps the width). The simulations are pure CPU and independent; each
/// carries its own seed in its `WorldConfig`, so results — cached or
/// fresh — are identical at any worker count. With `--json <dir>`, each
/// result is also written as `<dir>/<label>.json`.
pub fn run_all(configs: Vec<(String, WorldConfig)>) -> Vec<(String, RunResult)> {
    let workers = WORKERS
        .get()
        .copied()
        .unwrap_or_else(sim_engine::par::available_workers);
    let cache_dir = match CACHE_DIR.get() {
        Some(None) => None,
        Some(Some(dir)) => Some(dir.clone()),
        None => Some(std::path::PathBuf::from(campaign::DEFAULT_CACHE_DIR)),
    };
    if cache_dir.is_none() && EXEC.get().copied() == Some(ExecChoice::Process) {
        eprintln!("warning: --exec process needs the record cache; --no-cache runs in threads");
    }
    let results = match cache_dir {
        Some(dir) => match campaign::Campaign::new(&dir)
            .with_workers(workers)
            .with_exec(exec_mode())
            .run(configs.clone())
        {
            Ok(outcome) => outcome.into_results(),
            // A broken cache directory (permissions, full disk) must not
            // block figure regeneration — warn and run uncached.
            Err(e) => {
                eprintln!(
                    "warning: campaign cache at {} unavailable ({e}); running uncached",
                    dir.display()
                );
                run_uncached(configs, workers)
            }
        },
        None => run_uncached(configs, workers),
    };
    for (label, result) in &results {
        export_json(label, result);
    }
    results
}

fn run_uncached(configs: Vec<(String, WorldConfig)>, workers: usize) -> Vec<(String, RunResult)> {
    sim_engine::par::map_with_workers(configs, workers, |_, (label, cfg)| (label, run(cfg)))
}

/// Print an ECDF as `value cumfrac` rows at the given probe points.
pub fn print_cdf(name: &str, samples: &Samples, probes: &[f64], unit: &str) {
    let mut s = samples.clone();
    if s.is_empty() {
        println!("  {name}: (no samples)");
        return;
    }
    print!("  {name:<42}");
    for &p in probes {
        print!(" {:>5.2}@{p}{unit}", s.cdf_at(p));
    }
    println!("  [n={} med={:.2}{unit}]", s.count(), s.median());
}

/// Print the standard quantile summary of a sample set.
pub fn print_quantiles(name: &str, samples: &Samples, unit: &str) {
    let mut s = samples.clone();
    if s.is_empty() {
        println!("  {name}: (no samples)");
        return;
    }
    println!(
        "  {name:<42} n={:<6} p10={:<8.2} med={:<8.2} p60={:<8.2} p90={:<8.2} max={:<8.2} ({unit})",
        s.count(),
        s.quantile(0.10),
        s.median(),
        s.quantile(0.60),
        s.quantile(0.90),
        s.quantile(1.0),
    );
}

/// Section header.
pub fn header(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_core::report::Report;

    fn small_batch() -> Vec<(String, WorldConfig)> {
        let spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
        (0..4)
            .map(|i| {
                let sites = vec![lab_site(1, 0.0, Channel::CH1, 2_000_000)];
                let cfg = lab_world(
                    DEFAULT_SEED + i,
                    sites,
                    spider.clone(),
                    Duration::from_secs(10),
                    10.0,
                );
                (format!("world-{i}"), cfg)
            })
            .collect()
    }

    /// The fan-out must be byte-identical at any worker count: each run's
    /// randomness comes from its own `WorldConfig` seed, never from
    /// scheduling.
    #[test]
    fn fan_out_is_byte_identical_across_worker_counts() {
        let serial: Vec<(String, String)> =
            sim_engine::par::map_with_workers(small_batch(), 1, |_, (label, cfg)| {
                (label, Report::from_run(&run(cfg)).to_json())
            });
        for workers in [2, 4] {
            let parallel: Vec<(String, String)> =
                sim_engine::par::map_with_workers(small_batch(), workers, |_, (label, cfg)| {
                    (label, Report::from_run(&run(cfg)).to_json())
                });
            assert_eq!(parallel, serial, "{workers} workers diverged from serial");
        }
    }
}
