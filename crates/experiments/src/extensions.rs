//! Beyond the paper's figures: ablations of Spider's design choices, a
//! system-level speed sweep (the dividing speed measured end-to-end rather
//! than analytically), and the §4.8 future-work extension — adaptive
//! channel selection — evaluated head-to-head.

use sim_engine::time::Duration;
use spider_core::config::SpiderConfig;
use wifi_mac::channel::Channel;

use crate::common::{amherst_sites, header, run_all, vehicular_world, Scale};

/// Ablation study: remove one Spider design choice at a time.
pub fn ablation(scale: Scale) {
    header("Ablation — what each Spider design choice is worth");
    let mk = |label: &str, spider: SpiderConfig| {
        (
            label.to_string(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                spider,
                scale.duration(1_800),
                10.0,
            ),
        )
    };
    // On a single channel (with the −85 dBm join floor) joins are easy and
    // several mechanisms stop binding; the multi-channel schedule is where
    // the paper's join pathologies live, so ablate under both.
    let multi = |mut cfg: SpiderConfig| {
        cfg.schedule = spider_core::config::SchedulePolicy::equal_three(Duration::from_millis(200));
        cfg
    };
    let results = run_all(vec![
        mk(
            "full Spider (ch1, multi-AP)",
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
        ),
        mk(
            "— join-history selection (best-RSSI)",
            SpiderConfig::ablate_history(Channel::CH1),
        ),
        mk(
            "— lease cache (full DHCP every join)",
            SpiderConfig::ablate_lease_cache(Channel::CH1),
        ),
        mk(
            "— reduced timers (stock 1s/3s/60s)",
            SpiderConfig::ablate_reduced_timers(Channel::CH1),
        ),
        mk(
            "— parallel joins (one interface)",
            SpiderConfig::ablate_parallel_join(Channel::CH1),
        ),
        mk(
            "full Spider (3 channels)",
            multi(SpiderConfig::single_channel_multi_ap(Channel::CH1)),
        ),
        mk(
            "— lease cache (3 channels)",
            multi(SpiderConfig::ablate_lease_cache(Channel::CH1)),
        ),
        mk(
            "— reduced timers (3 channels)",
            multi(SpiderConfig::ablate_reduced_timers(Channel::CH1)),
        ),
        mk(
            "— parallel joins (3 channels)",
            multi(SpiderConfig::ablate_parallel_join(Channel::CH1)),
        ),
    ]);
    println!(
        "\n  {:<42} {:>11} {:>13} {:>7} {:>9} {:>10}",
        "variant", "tput KB/s", "connectivity", "joins", "failures", "med join"
    );
    for (label, r) in &results {
        println!(
            "  {:<42} {:>11.1} {:>12.1}% {:>7} {:>9} {:>8.2}s",
            label,
            r.avg_throughput_kbps(),
            100.0 * r.connectivity,
            r.join_times.count(),
            r.assoc_failures + r.dhcp_failures,
            r.join_times.clone().median()
        );
    }
    println!("\n  Reading: each row disables one mechanism. The gap to the full system");
    println!("  is that mechanism's contribution in this environment.");
}

/// System-level speed sweep: the dividing-speed story measured end-to-end.
pub fn speed_sweep(scale: Scale) {
    header("Speed sweep — throughput vs vehicle speed, single- vs multi-channel");
    let mut configs = Vec::new();
    for &speed in &[2.5, 5.0, 10.0, 15.0, 20.0, 30.0] {
        configs.push((
            format!("{speed:>4} m/s — 1 channel"),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                SpiderConfig::single_channel_multi_ap(Channel::CH1),
                scale.duration(900),
                speed,
            ),
        ));
        configs.push((
            format!("{speed:>4} m/s — 3 channels"),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
                scale.duration(900),
                speed,
            ),
        ));
    }
    let results = run_all(configs);
    println!(
        "\n  {:<26} {:>11} {:>13} {:>7} {:>9}",
        "speed / schedule", "tput KB/s", "connectivity", "joins", "failures"
    );
    for (label, r) in &results {
        println!(
            "  {:<26} {:>11.1} {:>12.1}% {:>7} {:>9}",
            label,
            r.avg_throughput_kbps(),
            100.0 * r.connectivity,
            r.join_times.count(),
            r.assoc_failures + r.dhcp_failures
        );
    }
    println!("\n  Expected shape: throughput falls with speed for both; the single-channel");
    println!("  advantage persists across vehicular speeds (the paper's main result).");
}

/// §4.8 extension: adaptive channel selection vs fixed channels.
pub fn adaptive(scale: Scale) {
    header("Extension (§4.8) — adaptive channel selection");
    let mk = |label: &str, spider: SpiderConfig| {
        (
            label.to_string(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                spider,
                scale.duration(1_800),
                10.0,
            ),
        )
    };
    let results = run_all(vec![
        mk(
            "fixed channel 1",
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
        ),
        mk(
            "fixed channel 6",
            SpiderConfig::single_channel_multi_ap(Channel::CH6),
        ),
        mk(
            "fixed channel 11",
            SpiderConfig::single_channel_multi_ap(Channel::CH11),
        ),
        mk(
            "adaptive channel (extension)",
            SpiderConfig::adaptive_channel(),
        ),
        mk(
            "3-channel static schedule",
            SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        ),
    ]);
    println!(
        "\n  {:<34} {:>11} {:>13} {:>7} {:>10}",
        "policy", "tput KB/s", "connectivity", "joins", "switches"
    );
    let mut best_fixed = 0.0f64;
    let mut adaptive_tput = 0.0f64;
    for (label, r) in &results {
        println!(
            "  {:<34} {:>11.1} {:>12.1}% {:>7} {:>10}",
            label,
            r.avg_throughput_kbps(),
            100.0 * r.connectivity,
            r.join_times.count(),
            r.switch_count
        );
        if label.starts_with("fixed") {
            best_fixed = best_fixed.max(r.avg_throughput_kbps());
        }
        if label.starts_with("adaptive") {
            adaptive_tput = r.avg_throughput_kbps();
        }
    }
    println!(
        "\n  Adaptive recovers {:.0}% of the best fixed channel's throughput without",
        100.0 * adaptive_tput / best_fixed.max(1e-9)
    );
    println!("  knowing in advance which channel that is — the paper's §4.8 wish.");
}

/// Encounter calibration: the simulated town vs the paper's §2.3 figures
/// (median ≈ 8 s, mean ≈ 22 s at vehicular speed).
pub fn encounters(scale: Scale) {
    use mobility::encounter::EncounterStats;
    use mobility::route::Vehicle;
    use sim_engine::time::Instant;
    use wifi_mac::phy::PhyConfig;

    header("Encounter calibration — in-range windows vs the paper's town");
    let route = crate::common::amherst_route();
    let sites = amherst_sites(scale.seed);
    let phy = PhyConfig::default();
    // "In range" at the PHY's 50% management-frame distance (joins gate
    // here; data with MAC retries reaches further).
    let range = phy.range_at_per(0.5);
    println!(
        "\n  {} APs on a {:.1} km loop; range = {range:.0} m (50% mgmt PER)",
        sites.len(),
        route.length() / 1000.0
    );
    println!(
        "  {:>28} {:>12} {:>12} {:>12}",
        "profile", "encounters", "median (s)", "mean (s)"
    );
    let mut profiles: Vec<(String, mobility::route::SpeedProfile)> = vec![];
    for speed in [5.0, 10.0, 15.0] {
        profiles.push((
            format!("constant {speed} m/s"),
            mobility::route::SpeedProfile::Constant(speed),
        ));
    }
    // Urban stop-and-go: lights every 300 m, 20 s dwell, 13 m/s cruise
    // (mean ≈ 7 m/s) — the skew generator real towns have.
    profiles.push((
        "stop-and-go 13 m/s / 20 s".into(),
        mobility::route::SpeedProfile::StopAndGo {
            cruise: 13.0,
            stop_every: 300.0,
            stop_for: 20.0,
        },
    ));
    for (label, profile) in profiles {
        let vehicle = Vehicle::with_profile(route.clone(), profile, Instant::ZERO);
        let stats = EncounterStats::collect(
            &vehicle,
            sites.iter().map(|s| s.position),
            range,
            Instant::ZERO + scale.duration(1_800),
        );
        println!(
            "  {label:>28} {:>12} {:>12.1} {:>12.1}",
            stats.count(),
            stats.median().as_secs_f64(),
            stats.mean().as_secs_f64()
        );
    }
    println!("\n  Paper (§2.3): median ≈ 8 s, mean ≈ 22 s. Our windows are in the same");
    println!("  band but less skewed: the synthetic town lacks the real one's many");
    println!("  grazing encounters (deep-set APs) and stop-and-go dwells.");
}

/// Capacity planning vs the simulator: the §4.7 envelope checked against
/// Table 2's measured numbers.
pub fn capacity(scale: Scale) {
    use analytical::capacity::CapacityPlan;
    header("Capacity planning — the closed-form envelope vs the simulator");
    // Parameters read off the *actual* deployed world (same seed the
    // simulator gets) plus the committed calibration (DESIGN.md §7).
    let sites = amherst_sites(scale.seed);
    let route = crate::common::amherst_route();
    let ch1: Vec<_> = sites.iter().filter(|s| s.channel == Channel::CH1).collect();
    let mean_backhaul_bps: f64 = if ch1.is_empty() {
        0.0
    } else {
        ch1.iter().map(|s| s.backhaul_bps as f64).sum::<f64>() / ch1.len() as f64
    };
    // Service range: where a data frame still gets through within the MAC
    // retry budget (joins gate at the shorter mgmt range, but an existing
    // association keeps delivering well past it).
    let phy = wifi_mac::phy::PhyConfig::default();
    let service_range = phy.range_at_per(0.5f64.powf(1.0 / (phy.data_retries + 1) as f64));
    let plan = CapacityPlan {
        speed_mps: 10.0,
        aps_per_km: ch1.len() as f64 / (route.length() / 1000.0),
        range_m: service_range,
        lateral_max_m: 45.0,
        join_time_s: 1.2,
        join_success: 0.9,
        per_ap_bps: mean_backhaul_bps / 8.0,
    };
    println!(
        "\n  world: {} channel-1 APs on {:.1} km ({:.2}/km), mean backhaul {:.2} Mb/s",
        ch1.len(),
        route.length() / 1000.0,
        plan.aps_per_km,
        mean_backhaul_bps / 1e6
    );
    println!("\n  channel-1 plan at 10 m/s:");
    println!(
        "    mean encounter        : {:>8.1} s",
        plan.mean_encounter_s()
    );
    println!(
        "    encounters per hour   : {:>8.1}",
        plan.encounters_per_hour()
    );
    println!("    usable s / encounter  : {:>8.1}", plan.usable_seconds());
    println!(
        "    bytes / encounter     : {:>8.0} kB",
        plan.bytes_per_encounter() / 1000.0
    );
    println!(
        "    planned average rate  : {:>8.1} KB/s",
        plan.average_rate_bps() / 1000.0
    );
    println!(
        "    coverage bound        : {:>8.1} %",
        100.0 * plan.coverage_fraction()
    );
    println!(
        "    break-even speed      : {:>8.1} m/s",
        plan.breakeven_speed_mps()
    );

    // The simulator's answer for the same channel-1 world.
    let measured = run_all(vec![(
        "ch1 multi-AP".into(),
        vehicular_world(
            scale.seed,
            amherst_sites(scale.seed),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            scale.duration(1_800),
            10.0,
        ),
    )]);
    let r = &measured[0].1;
    println!(
        "\n  simulator (same world)  : {:>8.1} KB/s at {:>4.1} % connectivity",
        r.avg_throughput_kbps(),
        100.0 * r.connectivity
    );
    println!("\n  Reading: the two should agree to within a small factor — the envelope");
    println!("  ignores multi-AP overlap (which helps) and join failures at the");
    println!("  encounter edges (which hurt).");
}
