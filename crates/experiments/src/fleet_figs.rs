//! Client-fleet experiments: endogenous contention among many Spider
//! clients sharing one deployment.
//!
//! `fleet-contention` drives a convoy of N ∈ {1, 2, 4, 8} Spider clients
//! around the metro grid (same deployment, same event queue, same shared
//! medium) and tabulates how per-client throughput degrades as the convoy
//! grows. The direction is cross-checked against the offered-load
//! extension of the Bianchi cell model
//! ([`analytical::cell::CellModel::per_station_goodput_bps`]): more
//! co-channel stations in a cell ⇒ less goodput each, saturating at the
//! cell capacity split N ways.
//!
//! `fleet-identity` is the refactor's safety latch: a world built with an
//! explicitly empty fleet must replay the historical single-client world
//! byte-for-byte (compared at `RunRecord` fidelity, the campaign cache's
//! own format). ci.sh runs it, and additionally replays
//! `fleet-contention` across `--exec process` / in-process threads to
//! pin cross-process byte-identity of fleet worlds.

use analytical::cell::CellModel;
use mobility::metro::{metro_deployment, metro_route, MetroChannelPlan, MetroConfig};
use mobility::route::Vehicle;
use sim_engine::rng::Rng;
use sim_engine::time::{Duration, Instant};
use spider_core::builder::WorldBuilder;
use spider_core::config::SpiderConfig;
use spider_core::fleet::convoy;
use spider_core::report::RunRecord;
use spider_core::world::{run, ClientMotion, WorldConfig};
use wifi_mac::channel::Channel;

use crate::common::{header, lab_site, run_all, Scale};

/// Convoy sizes swept by `fleet-contention`.
const FLEET_SIZES: [usize; 4] = [1, 2, 4, 8];

/// Headway between convoy members. At metro speed (13 m/s) this spaces
/// clients ~40 m apart, so a convoy shares grid cells — and therefore
/// occupancy-scaled airtime — most of the time.
const HEADWAY: Duration = Duration::from_secs(3);

/// Per-client offered load for the analytical cross-check: a saturating
/// bulk download offers (much) more than any cell carries, so the model
/// sits on its `capacity(n)/n` branch.
const OFFERED_BPS: f64 = 10e6;

fn convoy_world(scale: Scale, n: usize) -> (String, WorldConfig) {
    let cfg = MetroConfig::downtown().with_plan(MetroChannelPlan::GridColor);
    let mut rng = Rng::new(scale.seed ^ 0xF1E);
    let sites = metro_deployment(&cfg, &mut rng);
    let lead = Vehicle::new(metro_route(&cfg), 13.0, Instant::ZERO);
    let world = WorldBuilder::new(scale.seed)
        .sites(sites)
        .vehicle(lead.clone())
        .driver(SpiderConfig::adaptive_channel())
        .duration(scale.duration(30))
        .fleet(convoy(&ClientMotion::Route(lead), n - 1, HEADWAY))
        .build();
    (format!("fleet-n{n}"), world)
}

/// The `fleet-contention` target.
pub fn fleet_contention(scale: Scale) {
    header("Fleet contention — convoy of N Spider clients, one metro grid");
    let worlds = FLEET_SIZES
        .iter()
        .map(|&n| convoy_world(scale, n))
        .collect();
    let model = CellModel::dsss_11b();

    println!("  Simulated (per-client application goodput over the drive):");
    println!(
        "  {:<10} {:>8} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "world", "clients", "total Mb/s", "mean Mb/s", "min Mb/s", "max Mb/s", "model Mb/s"
    );
    for (label, r) in run_all(worlds) {
        let n = r.per_client.len();
        let secs = r.duration.as_secs_f64();
        let mbps = |bytes: u64| (bytes as f64 * 8.0) / secs / 1e6;
        let per: Vec<f64> = r.per_client.iter().map(|c| mbps(c.bytes)).collect();
        let mean = per.iter().sum::<f64>() / n as f64;
        let min = per.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per.iter().copied().fold(0.0_f64, f64::max);
        // The model's cell holds the convoy plus its serving AP.
        let predicted = model.per_station_goodput_bps(n + 1, OFFERED_BPS) / 1e6;
        println!(
            "  {:<10} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>14.3}",
            label,
            n,
            mbps(r.total_bytes),
            mean,
            min,
            max,
            predicted,
        );
    }
    println!();
    println!("  Model column: offered-load Bianchi cell, capacity(n)/n branch —");
    println!("  the *direction* (monotone decay with fleet size) is the claim;");
    println!("  absolute levels differ because convoy cells also lose airtime");
    println!("  to joins, switching, and backhaul limits the model omits.");
}

/// The `fleet-identity` target: refuses to pass unless an explicit empty
/// fleet replays the historical single-client constructor byte-for-byte.
pub fn fleet_identity(scale: Scale) {
    header("Fleet identity — empty fleet vs the single-client world");
    let sites = || {
        vec![
            lab_site(1, 0.0, Channel::CH1, 2_000_000),
            lab_site(2, 30.0, Channel::CH6, 2_000_000),
        ]
    };
    let single = run(WorldConfig::new(
        scale.seed,
        sites(),
        ClientMotion::Fixed(mobility::geometry::Point::new(0.0, 10.0)),
        SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        scale.duration(20),
    ));
    let fleet1 = WorldBuilder::new(scale.seed)
        .sites(sites())
        .fixed_client(mobility::geometry::Point::new(0.0, 10.0))
        .driver(SpiderConfig::multi_channel_multi_ap(Duration::from_millis(
            200,
        )))
        .duration(scale.duration(20))
        .fleet(Vec::new())
        .build();
    let a = RunRecord::to_json(&single).expect("serialize single-client record");
    let b = RunRecord::to_json(&run(fleet1)).expect("serialize fleet record");
    if a != b {
        eprintln!("fleet-identity: MISMATCH");
        eprintln!("single: {a}");
        eprintln!("fleet1: {b}");
        std::process::exit(1);
    }
    println!("  identical at RunRecord fidelity ({} bytes)", a.len());
    println!("  {a}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance direction: per-client throughput must degrade as
    /// the fleet grows, in the direction the offered-load cell model
    /// predicts. A stationary pair of 20 Mb/s-backhaul APs isolates the
    /// shared-medium effect from mobility noise.
    #[test]
    fn per_client_throughput_degrades_with_occupancy() {
        let mk = |extra: usize| {
            let spot = mobility::geometry::Point::new(0.0, 10.0);
            let world = WorldBuilder::new(11)
                .sites(vec![
                    lab_site(1, 0.0, Channel::CH1, 20_000_000),
                    lab_site(2, 5.0, Channel::CH1, 20_000_000),
                ])
                .fixed_client(spot)
                .driver(SpiderConfig::single_channel_multi_ap(Channel::CH1))
                .duration(Duration::from_secs(30))
                .fleet(vec![ClientMotion::Fixed(spot); extra])
                .build();
            run(world)
        };
        let alone = mk(0);
        let crowd = mk(3);
        let mean = |r: &spider_core::world::RunResult| {
            r.per_client.iter().map(|c| c.bytes).sum::<u64>() as f64 / r.per_client.len() as f64
        };
        assert!(
            mean(&crowd) < mean(&alone),
            "4 clients must each get less than 1 alone: {} vs {}",
            mean(&crowd),
            mean(&alone)
        );
        // Same direction as the model.
        let model = CellModel::dsss_11b();
        assert!(
            model.per_station_goodput_bps(5, OFFERED_BPS)
                < model.per_station_goodput_bps(2, OFFERED_BPS)
        );
    }

    /// `fleet-identity`'s core claim, kept as a test so `cargo test`
    /// catches a drift without running the binary.
    #[test]
    fn empty_fleet_matches_single_client_constructor() {
        let scale = Scale {
            factor: 1,
            seed: crate::common::DEFAULT_SEED,
        };
        let sites = vec![lab_site(1, 0.0, Channel::CH1, 2_000_000)];
        let single = run(WorldConfig::new(
            scale.seed,
            sites.clone(),
            ClientMotion::Fixed(mobility::geometry::Point::new(0.0, 10.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(15),
        ));
        let fleet1 = WorldBuilder::new(scale.seed)
            .sites(sites)
            .fixed_client(mobility::geometry::Point::new(0.0, 10.0))
            .driver(SpiderConfig::single_channel_multi_ap(Channel::CH1))
            .duration(Duration::from_secs(15))
            .fleet(Vec::new())
            .run();
        assert_eq!(
            RunRecord::to_json(&single).unwrap(),
            RunRecord::to_json(&fleet1).unwrap()
        );
    }
}
