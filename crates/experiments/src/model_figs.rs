//! Figures 2–4: the analytical model, its Monte-Carlo corroboration, and
//! the throughput-maximization framework.

use analytical::join_model::JoinModelParams;
use analytical::join_sim::simulate_runs;
use analytical::optimizer::dividing_speed;
use analytical::scenarios::Fig4Scenario;
use analytical::sensitivity;
use sim_engine::rng::Rng;

use crate::common::header;

/// Fig. 2: join probability vs fraction of time on channel — model (Eq. 7)
/// vs simulation (mean ± σ of 100-trial runs), for βmax ∈ {5 s, 10 s}.
pub fn fig2(seed: u64) {
    header("Figure 2 — join probability vs fraction on channel (model vs simulation)");
    println!("D = 500 ms, t = 4 s, βmin = 500 ms, w = 7 ms, c = 100 ms, h = 10 %");
    let mut rng = Rng::new(seed);
    for beta_max in [5.0, 10.0] {
        println!("\n  βmax = {beta_max} s");
        println!(
            "  {:>6} {:>12} {:>12} {:>10}",
            "f_i", "model p", "sim mean", "sim σ"
        );
        for step in 1..=20 {
            let f = step as f64 / 20.0;
            let params = JoinModelParams::figure2(f, beta_max);
            let model = params.p_join(4.0);
            let (mean, sd) = simulate_runs(&params, 4.0, 30, 100, &mut rng);
            println!("  {f:>6.2} {model:>12.3} {mean:>12.3} {sd:>10.3}");
        }
    }
}

/// Fig. 3: join probability vs βmax for several fractions, with and
/// without switching delay.
pub fn fig3() {
    header("Figure 3 — join probability vs maximum AP response time βmax");
    println!("D = 500 ms, t = 4 s, βmin = 500 ms, c = 100 ms, h = 10 %");
    let curves: [(f64, f64); 6] = [
        (0.10, 0.0),   // fi=.10 (w=0)
        (0.10, 0.007), // fi=.10
        (0.25, 0.007),
        (0.40, 0.007),
        (0.50, 0.007),
        (0.50, 0.0), // fi=.50 (w=0)
    ];
    print!("  {:>8}", "βmax(s)");
    for (f, w) in curves {
        print!(
            " {:>14}",
            format!("f={f}{}", if w == 0.0 { ",w=0" } else { "" })
        );
    }
    println!();
    let mut beta = 0.6;
    while beta <= 10.0 + 1e-9 {
        print!("  {beta:>8.1}");
        for (f, w) in curves {
            let params = JoinModelParams {
                switch_delay: w,
                ..JoinModelParams::figure2(f, beta)
            };
            print!(" {:>14.3}", params.p_join(4.0));
        }
        println!();
        beta += 0.8;
    }
    println!("\n  Expected shape: shorter βmax ⇒ higher join probability; w ≈ 0 barely helps.");
}

/// Fig. 4: optimal per-channel bandwidth vs speed for the three offered
/// splits, plus the dividing speed.
pub fn fig4() {
    header("Figure 4 — optimal aggregated bandwidth per channel vs speed");
    println!("Bw = 11 Mb/s, range 100 m, βmax = 10 s, βmin = 500 ms");
    for scenario in Fig4Scenario::ALL {
        let share = scenario.joined_share();
        println!(
            "\n  Offered split {}: ch1 joined = {share}·Bw, ch2 available = {:.2}·Bw",
            scenario.label(),
            1.0 - share
        );
        println!(
            "  {:>10} {:>14} {:>14} {:>10} {:>10}",
            "speed m/s", "ch1 kb/s", "ch2 kb/s", "f1", "f2"
        );
        for speed in [2.5, 3.3, 5.0, 6.6, 10.0, 20.0] {
            let sched = scenario.solve_at(speed, 10.0);
            println!(
                "  {speed:>10.1} {:>14.0} {:>14.0} {:>10.2} {:>10.2}",
                sched.per_channel_bps[0] / 1000.0,
                sched.per_channel_bps[1] / 1000.0,
                sched.fractions[0],
                sched.fractions[1]
            );
        }
        let divide = dividing_speed(share, 10.0, 1.0, 60.0, 0.5);
        println!(
            "  dividing speed (ch2 recovers <50% of its available bandwidth): {divide:.1} m/s"
        );
    }
    println!("\n  Expected shape: ch2's recovered bandwidth falls with speed; the paper's");
    println!("  hard single-channel rule additionally rests on the DHCP/TCP penalties of §2.2.");
}

/// Sensitivity panel: which model constant actually moves the answer.
pub fn sensitivity_panel() {
    header("Sensitivity — the join model around the paper's operating point");
    println!("f = 0.3, βmax = 10 s, t = 4 s; each parameter swept alone");
    for s in sensitivity::panel(0.3, 10.0, 4.0) {
        println!("\n  {}", s.parameter);
        println!("  {:>12} {:>10} {:>12}", "value", "p_join", "E[join] (s)");
        for ((v, p), g) in s.values.iter().zip(&s.p_join).zip(&s.expected_join_time) {
            println!("  {v:>12.3} {p:>10.3} {g:>12.2}");
        }
        println!("  swing in p_join: {:.3}", s.p_swing());
    }
    println!("\n  Reading: loss h and the request cadence dominate; the hardware switch");
    println!("  delay w is second-order — the paper's Fig. 3 observation, quantified.");
}
