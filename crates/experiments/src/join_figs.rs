//! Figures 5–6 (association and DHCP vs channel fraction) and the timeout
//! studies: Table 3 and Figures 11–12.

use dhcp::DhcpClientConfig;
use sim_engine::time::Duration;
use spider_core::config::{SchedulePolicy, SpiderConfig};
use wifi_mac::channel::Channel;
use wifi_mac::client::JoinConfig;

use crate::common::{
    amherst_sites, header, print_cdf, run_all, split_schedule, vehicular_world, Scale,
};

/// The §2.2.1 vehicular driver schedule: fraction `f6` of a 400 ms period
/// on channel 6, the rest split over 1 and 11, reduced 100 ms link-layer
/// timers.
fn section22_config(f6: f64, dhcp_retx: Duration, default_dhcp: bool) -> SpiderConfig {
    let mut cfg = SpiderConfig::multi_channel_multi_ap(Duration::from_millis(133));
    cfg.schedule = split_schedule(Channel::CH6, f6, Duration::from_millis(400));
    cfg.join = JoinConfig::reduced();
    cfg.dhcp = if default_dhcp {
        DhcpClientConfig::default()
    } else {
        DhcpClientConfig::reduced(dhcp_retx)
    };
    cfg
}

/// Fig. 5: CDF of link-layer association time as a function of the
/// fraction of the 400 ms period spent on channel 6.
pub fn fig5(scale: Scale) {
    header("Figure 5 — association time CDF vs fraction of time on channel 6");
    println!("D = 400 ms, link-layer timeout 100 ms, vehicular (10 m/s), Amherst-like APs");
    let configs: Vec<(String, _)> = [0.25, 0.50, 0.75, 1.0]
        .into_iter()
        .map(|f| {
            let spider = section22_config(f, Duration::from_millis(100), false);
            (
                format!("{:.0}%", f * 100.0),
                vehicular_world(
                    scale.seed,
                    amherst_sites(scale.seed),
                    spider,
                    scale.duration(600),
                    10.0,
                ),
            )
        })
        .collect();
    let results = run_all(configs);
    for (label, result) in &results {
        print_cdf(
            &format!("f6 = {label} assoc time"),
            &result.assoc_times,
            &[0.2, 0.4, 1.0],
            "s",
        );
    }
    println!("\n  Expected shape: f6 = 100% completes fastest; association is fairly");
    println!("  robust down to 25% (the paper's surprising finding).");
}

/// Fig. 6: CDF of the full join (association + DHCP) vs fraction and DHCP
/// timeout (100 ms vs default).
pub fn fig6(scale: Scale) {
    header("Figure 6 — DHCP lease acquisition CDF vs channel fraction and timeout");
    println!("D = 400 ms; reduced timers 100 ms vs stock defaults (1 s retx / 3 s / 60 s)");
    let cases: Vec<(String, f64, bool)> = vec![
        ("25% — 100ms".into(), 0.25, false),
        ("50% — 100ms".into(), 0.50, false),
        ("100% — 100ms".into(), 1.0, false),
        ("100% — default".into(), 1.0, true),
    ];
    let configs: Vec<(String, _)> = cases
        .into_iter()
        .map(|(label, f, default_dhcp)| {
            let spider = section22_config(f, Duration::from_millis(100), default_dhcp);
            (
                label,
                vehicular_world(
                    scale.seed,
                    amherst_sites(scale.seed),
                    spider,
                    scale.duration(600),
                    10.0,
                ),
            )
        })
        .collect();
    let results = run_all(configs);
    for (label, result) in &results {
        print_cdf(
            &format!("{label} join time"),
            &result.join_times,
            &[1.0, 2.0, 5.0],
            "s",
        );
        println!(
            "      dhcp attempts {:>5}  failures {:>5}  ({:.1}% failed)",
            result.dhcp_attempts,
            result.dhcp_failures,
            100.0 * result.dhcp_failure_rate()
        );
    }
    println!("\n  Expected shape: reduced timers cut the median join time; low fractions");
    println!("  degrade DHCP much more than they degrade association.");
}

/// Table 3: DHCP failure probability per timeout configuration; also the
/// raw material for Fig. 11.
pub fn table3_fig11(scale: Scale) {
    header("Table 3 / Figure 11 — DHCP failures and join-time CDF vs timeouts");
    let one = SchedulePolicy::SingleChannel(Channel::CH1);
    let three = SchedulePolicy::equal_three(Duration::from_millis(200));
    let cases: Vec<(String, SchedulePolicy, Option<Duration>)> = vec![
        (
            "ch1, ll=100ms, dhcp=600ms, 7 ifaces".into(),
            one.clone(),
            Some(Duration::from_millis(600)),
        ),
        (
            "ch1, ll=100ms, dhcp=400ms, 7 ifaces".into(),
            one.clone(),
            Some(Duration::from_millis(400)),
        ),
        (
            "ch1, ll=100ms, dhcp=200ms, 7 ifaces".into(),
            one.clone(),
            Some(Duration::from_millis(200)),
        ),
        (
            "3 chans 1/3 sched, ll=100ms, dhcp=200ms".into(),
            three.clone(),
            Some(Duration::from_millis(200)),
        ),
        ("ch1, default timers, 7 ifaces".into(), one, None),
        ("3 chans 1/3 sched, default timers".into(), three, None),
    ];
    let configs: Vec<(String, _)> = cases
        .into_iter()
        .map(|(label, schedule, dhcp_retx)| {
            let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
            spider.schedule = schedule;
            spider.dhcp = match dhcp_retx {
                Some(retx) => DhcpClientConfig::reduced(retx),
                None => DhcpClientConfig::default(),
            };
            (
                label,
                vehicular_world(
                    scale.seed,
                    amherst_sites(scale.seed),
                    spider,
                    scale.duration(900),
                    10.0,
                ),
            )
        })
        .collect();
    let results = run_all(configs);
    println!(
        "\n  {:<44} {:>9} {:>9} {:>9}",
        "configuration", "attempts", "failed", "failed %"
    );
    for (label, r) in &results {
        println!(
            "  {:<44} {:>9} {:>9} {:>8.1}%",
            label,
            r.dhcp_attempts,
            r.dhcp_failures,
            100.0 * r.dhcp_failure_rate()
        );
    }
    println!("\n  Figure 11 series (time to join = assoc + DHCP):");
    for (label, r) in &results {
        print_cdf(label, &r.join_times, &[1.0, 3.0, 8.0], "s");
    }
    println!("\n  Expected shape: reduced timeouts raise the failure rate (≈2× vs default)");
    println!("  but cut the median join time; multi-channel schedules hurt both.");
}

/// Fig. 12: join delay for different scheduling policies (1 vs 7 ifaces,
/// 1/2/3 channels, default vs reduced timers).
pub fn fig12(scale: Scale) {
    header("Figure 12 — join delay per scheduling policy");
    let mk = |label: &str, spider: SpiderConfig| {
        (
            label.to_string(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                spider,
                scale.duration(900),
                10.0,
            ),
        )
    };
    let mut one_iface = SpiderConfig::single_channel_single_ap(Channel::CH1);
    one_iface.join = JoinConfig::default();
    one_iface.dhcp = DhcpClientConfig::default();

    let mut seven_default = SpiderConfig::single_channel_multi_ap(Channel::CH1);
    seven_default.join = JoinConfig::default();
    seven_default.dhcp = DhcpClientConfig::default();

    let seven_reduced = SpiderConfig::single_channel_multi_ap(Channel::CH1);

    let mut two_ch = SpiderConfig::single_channel_multi_ap(Channel::CH1);
    two_ch.schedule = SchedulePolicy::equal_two(Duration::from_millis(200));
    two_ch.join = JoinConfig::default();
    two_ch.dhcp = DhcpClientConfig::default();

    let mut three_default = SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200));
    three_default.join = JoinConfig::default();
    three_default.dhcp = DhcpClientConfig::default();

    let three_reduced = SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200));

    let results = run_all(vec![
        mk("1 iface, ch1 100%, default timers", one_iface),
        mk("7 ifaces, ch1 100%, default timers", seven_default),
        mk("7 ifaces, ch1 100%, dhcp=200ms ll=100ms", seven_reduced),
        mk("7 ifaces, ch1/ch6 50/50, default timers", two_ch),
        mk("7 ifaces, 3 chans equal, default timers", three_default),
        mk(
            "7 ifaces, 3 chans equal, dhcp=200ms ll=100ms",
            three_reduced,
        ),
    ]);
    for (label, r) in &results {
        print_cdf(label, &r.join_times, &[1.0, 3.0, 8.0], "s");
    }
    println!("\n  Expected shape: single-channel with reduced timeouts joins fastest;");
    println!("  every added channel pushes the CDF right (the 2× cost the paper reports).");
}
