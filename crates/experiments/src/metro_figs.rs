//! Metro-scale channel assignment: what a planner's channel plan is worth
//! in a downtown of a thousand open APs.
//!
//! Four plans over the **same** physical deployment (placement and
//! network draws are seed-locked across plans — see
//! `mobility::metro_deployment`'s fork contract):
//!
//! * `single` — everything on channel 6, the planner's worst case;
//! * `measured-mix` — channels drawn from the Amherst measured mix;
//! * `round-robin` — orthogonal channels by AP id, blind to geometry;
//! * `grid-color` — a proper 3-coloring of the block grid.
//!
//! Each plan is scored twice. **Analytically**: the spatial grid computes
//! every AP's co-channel degree inside its interference disc, and the
//! Panda & Kumar / Bianchi saturation cell model converts that degree into
//! per-AP capacity. **End-to-end**: a Spider client with adaptive channel
//! selection laps the grid through the campaign orchestrator, so the
//! DES results land in the same content-addressed cache as every other
//! figure.

use geo::{contention, GridIndex};
use mobility::metro::{metro_deployment, metro_route, MetroChannelPlan, MetroConfig};
use mobility::route::Vehicle;
use sim_engine::rng::Rng;
use sim_engine::time::Instant;
use spider_core::config::SpiderConfig;
use spider_core::world::{ClientMotion, WorldConfig};
use wifi_mac::channel::Channel;

use crate::common::{header, run_all, Scale};

/// Interference radius: how far a co-channel transmitter still contends
/// for the medium. Roughly carrier-sense range at street level — shorter
/// than the 400 m hearing range, longer than a block.
const INTERFERENCE_RADIUS_M: f64 = 150.0;

/// Grid cell edge for the contention analysis (two 80 m blocks).
const ANALYSIS_CELL_M: f64 = 160.0;

fn plans() -> Vec<MetroChannelPlan> {
    vec![
        MetroChannelPlan::Single(Channel::CH6),
        MetroChannelPlan::Mix(mobility::deployment::ChannelMix::amherst()),
        MetroChannelPlan::RoundRobin,
        MetroChannelPlan::GridColor,
    ]
}

/// The `channel-assignment` target.
pub fn channel_assignment(scale: Scale) {
    header("Metro channel assignment — 1024 APs, four plans, one deployment");
    let model = analytical::cell::CellModel::dsss_11b();

    println!(
        "  {:<14} {:>8} {:>10} {:>12} {:>16} {:>16}",
        "plan", "APs", "max deg", "mean deg", "per-AP @mean", "per-AP @max"
    );
    let mut worlds = Vec::new();
    for plan in plans() {
        let cfg = MetroConfig::downtown().with_plan(plan);
        let mut rng = Rng::new(scale.seed ^ 0x3E7);
        let sites = metro_deployment(&cfg, &mut rng);

        // Analytical score: grid → co-channel degree → cell-model capacity.
        let positions: Vec<_> = sites.iter().map(|s| s.position).collect();
        let channels: Vec<_> = sites.iter().map(|s| s.channel).collect();
        let grid = GridIndex::build(&positions, ANALYSIS_CELL_M);
        let summary = contention(&grid, &channels, INTERFERENCE_RADIUS_M);
        let mean = summary.mean_degree();
        // The model takes an integer cell population; round the mean.
        let at_mean = model.per_ap_throughput_bps(mean.round().max(1.0) as usize);
        let at_max = model.per_ap_throughput_bps(summary.max_degree().max(1) as usize);
        println!(
            "  {:<14} {:>8} {:>10} {:>12.2} {:>13.2} Mb/s {:>13.3} Mb/s",
            cfg.plan.name(),
            sites.len(),
            summary.max_degree(),
            mean,
            at_mean / 1e6,
            at_max / 1e6,
        );

        // End-to-end world: a Spider client with adaptive channel
        // selection lapping the grid interior at urban speed.
        let vehicle = Vehicle::new(metro_route(&cfg), 13.0, Instant::ZERO);
        let world = WorldConfig::new(
            scale.seed,
            sites,
            ClientMotion::Route(vehicle),
            SpiderConfig::adaptive_channel(),
            scale.duration(30),
        );
        worlds.push((format!("metro-{}", cfg.plan.name()), world));
    }

    println!();
    println!("  End-to-end (Spider adaptive-channel client, one interior lap):");
    println!(
        "  {:<24} {:>12} {:>14} {:>10} {:>10}",
        "world", "avg Mb/s", "connectivity", "joins", "switches"
    );
    for (label, r) in run_all(worlds) {
        println!(
            "  {:<24} {:>12.3} {:>13.1}% {:>10} {:>10}",
            label,
            r.avg_throughput_bps / 1e6,
            r.connectivity * 100.0,
            r.join_times.count(),
            r.switch_count,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The analytical ranking the experiment prints must order the plans
    /// the way interference theory says: a proper grid coloring beats
    /// geometry-blind round-robin and the measured mix, and everything
    /// beats a single shared channel.
    #[test]
    fn grid_coloring_minimizes_cochannel_degree() {
        let mut degrees = Vec::new();
        for plan in plans() {
            let cfg = MetroConfig::downtown().with_plan(plan);
            let sites = metro_deployment(&cfg, &mut Rng::new(9));
            let positions: Vec<_> = sites.iter().map(|s| s.position).collect();
            let channels: Vec<_> = sites.iter().map(|s| s.channel).collect();
            let grid = GridIndex::build(&positions, ANALYSIS_CELL_M);
            let s = contention(&grid, &channels, INTERFERENCE_RADIUS_M);
            degrees.push((cfg.plan.name(), s.mean_degree()));
        }
        let of = |name: &str| {
            degrees
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, d)| d)
                .unwrap()
        };
        assert!(of("grid-color") < of("round-robin"));
        assert!(of("round-robin") < of("single"));
        assert!(of("measured-mix") < of("single"));
        // Orthogonal plans split one channel's contention three ways.
        assert!(of("single") > 2.5 * of("grid-color"));
    }
}
