//! Regenerates every table and figure of "Concurrent Wi-Fi for Mobile
//! Users: Analysis and Measurements" (CoNEXT 2011).
//!
//! ```text
//! experiments <target> [--seed N] [--scale K] [--json DIR]
//!             [--workers N] [--cache-dir DIR] [--no-cache]
//!             [--exec process|in-process]
//!
//! targets: fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!          fig13 fig14 table1 table2 table3 table4 density
//!          sensitivity ablation speed adaptive encounters capacity
//!          channel-assignment fleet-contention fleet-identity all
//! ```
//!
//! `--scale K` multiplies run lengths by `K` (1 = quick pass; the paper's
//! 30–60 minute drives correspond to roughly `--scale 4`).
//!
//! `--exec process` runs uncached shards in worker OS processes (this
//! same binary, re-invoked with the hidden `--worker` flag) instead of
//! threads: a crashed shard is retried on a respawned worker rather than
//! taking the whole run down. Output is byte-identical either way.
//!
//! Simulation shards run through the campaign orchestrator: results are
//! cached by content hash under `target/campaign` (override with
//! `--cache-dir`, bypass with `--no-cache`), so re-running an unchanged
//! target replays from cache with byte-identical output. `--workers N`
//! caps the worker pool (default: all cores); progress/ETA lines go to
//! stderr, figure text to stdout.

mod common;
mod eval_figs;
mod extensions;
mod fleet_figs;
mod join_figs;
mod metro_figs;
mod model_figs;
mod tcp_figs;

use common::{Scale, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Worker mode: speak the fleet protocol on stdin/stdout and nothing
    // else. Checked before any output — stdout belongs to the protocol.
    if args.first().map(String::as_str) == Some("--worker") {
        let fingerprint = campaign::hash::code_fingerprint();
        match fleet::worker::serve(std::io::stdin(), std::io::stdout(), &fingerprint) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("worker: protocol error: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut target = String::from("all");
    let mut scale = Scale {
        factor: 1,
        seed: DEFAULT_SEED,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                scale.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--scale" => {
                i += 1;
                scale.factor = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs an integer"));
            }
            "--json" => {
                i += 1;
                let dir = std::path::PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| usage("--json needs a directory")),
                );
                std::fs::create_dir_all(&dir)
                    .unwrap_or_else(|e| usage(&format!("cannot create {}: {e}", dir.display())));
                let _ = common::JSON_DIR.set(Some(dir));
            }
            "--workers" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--workers needs a positive integer"));
                let _ = common::WORKERS.set(n);
            }
            "--cache-dir" => {
                i += 1;
                let dir = std::path::PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| usage("--cache-dir needs a directory")),
                );
                let _ = common::CACHE_DIR.set(Some(dir));
            }
            "--no-cache" => {
                let _ = common::CACHE_DIR.set(None);
            }
            "--exec" => {
                i += 1;
                let mode = match args.get(i).map(String::as_str) {
                    Some("process") => common::ExecChoice::Process,
                    Some("in-process") => common::ExecChoice::InProcess,
                    _ => usage("--exec needs 'process' or 'in-process'"),
                };
                let _ = common::EXEC.set(mode);
            }
            t if !t.starts_with('-') => target = t.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    println!(
        "Spider (CoNEXT 2011) reproduction — seed {} scale {}",
        scale.seed, scale.factor
    );
    match target.as_str() {
        "fig2" => model_figs::fig2(scale.seed),
        "fig3" => model_figs::fig3(),
        "fig4" => model_figs::fig4(),
        "fig5" => join_figs::fig5(scale),
        "fig6" => join_figs::fig6(scale),
        "fig7" => tcp_figs::fig7(scale),
        "fig8" => tcp_figs::fig8(scale),
        "fig9" => tcp_figs::fig9(scale),
        "fig10" | "table2" => eval_figs::table2_fig10(scale),
        "fig11" | "table3" => join_figs::table3_fig11(scale),
        "fig12" => join_figs::fig12(scale),
        "fig13" | "fig14" | "usability" => eval_figs::usability(scale),
        "table1" => tcp_figs::table1(scale),
        "table4" => eval_figs::table4(scale),
        "density" => eval_figs::density(scale),
        "sensitivity" => model_figs::sensitivity_panel(),
        "ablation" => extensions::ablation(scale),
        "speed" => extensions::speed_sweep(scale),
        "adaptive" => extensions::adaptive(scale),
        "encounters" => extensions::encounters(scale),
        "capacity" => extensions::capacity(scale),
        "channel-assignment" => metro_figs::channel_assignment(scale),
        "fleet-contention" => fleet_figs::fleet_contention(scale),
        "fleet-identity" => fleet_figs::fleet_identity(scale),
        "all" => {
            model_figs::fig2(scale.seed);
            model_figs::fig3();
            model_figs::fig4();
            join_figs::fig5(scale);
            join_figs::fig6(scale);
            tcp_figs::fig7(scale);
            tcp_figs::fig8(scale);
            tcp_figs::table1(scale);
            tcp_figs::fig9(scale);
            eval_figs::table2_fig10(scale);
            eval_figs::density(scale);
            join_figs::table3_fig11(scale);
            join_figs::fig12(scale);
            eval_figs::table4(scale);
            eval_figs::usability(scale);
            model_figs::sensitivity_panel();
            extensions::ablation(scale);
            extensions::speed_sweep(scale);
            extensions::adaptive(scale);
            extensions::encounters(scale);
            extensions::capacity(scale);
            metro_figs::channel_assignment(scale);
            fleet_figs::fleet_contention(scale);
            fleet_figs::fleet_identity(scale);
        }
        other => usage(&format!("unknown target {other}")),
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: experiments <fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|table1|table2|table3|table4|density|sensitivity|ablation|speed|adaptive|encounters|capacity|channel-assignment|fleet-contention|fleet-identity|all> [--seed N] [--scale K] [--json DIR] [--workers N] [--cache-dir DIR] [--no-cache] [--exec process|in-process]"
    );
    std::process::exit(2);
}
