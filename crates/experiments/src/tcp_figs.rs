//! Figures 7–9 and Table 1: the indoor/lab micro-benchmarks.

use sim_engine::rng::Rng;
use sim_engine::stats::Summary;
use sim_engine::time::Duration;
use spider_core::config::{SchedulePolicy, SpiderConfig};
use wifi_mac::channel::Channel;
use wifi_mac::radio::RadioConfig;

use crate::common::{header, lab_site, lab_world, run_all, split_schedule, Scale};

/// Fig. 7: average TCP throughput vs % of a 400 ms period spent on the
/// primary channel (one AP, indoor).
pub fn fig7(scale: Scale) {
    header("Figure 7 — TCP throughput vs % of time on the primary channel");
    println!("One AP on channel 1, D = 400 ms (≈ 2 RTTs), remainder split over 6/11");
    let configs: Vec<(String, _)> = (1..=10)
        .map(|i| {
            let f = i as f64 / 10.0;
            let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
            spider.schedule = split_schedule(Channel::CH1, f, Duration::from_millis(400));
            (
                format!("{:>3.0}%", f * 100.0),
                lab_world(
                    scale.seed,
                    vec![lab_site(1, 0.0, Channel::CH1, 100_000_000)],
                    spider,
                    scale.duration(60),
                    10.0,
                ),
            )
        })
        .collect();
    let results = run_all(configs);
    println!("\n  {:>6} {:>18}", "% time", "avg tput (kb/s)");
    for (label, r) in &results {
        println!("  {label:>6} {:>18.0}", r.avg_throughput_bps * 8.0 / 1000.0);
    }
    println!("\n  Expected shape: monotone increase — the 400 ms cycle is short enough");
    println!("  that TCP rarely times out, so throughput ∝ schedule share.");
}

/// Fig. 8: average TCP throughput vs the *absolute* time per channel under
/// an equal three-channel schedule — the non-monotone curve.
pub fn fig8(scale: Scale) {
    header("Figure 8 — TCP throughput vs absolute time per channel (equal 3-channel)");
    println!("For x ms on the AP's channel the radio is away 2x ms; RTO min = 200 ms");
    let slices_ms = [33u64, 66, 100, 133, 200, 266, 333, 400];
    let configs: Vec<(String, _)> = slices_ms
        .iter()
        .map(|&ms| {
            let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
            spider.schedule = SchedulePolicy::equal_three(Duration::from_millis(ms));
            (
                format!("{ms:>4} ms"),
                lab_world(
                    scale.seed,
                    vec![lab_site(1, 0.0, Channel::CH1, 100_000_000)],
                    spider,
                    scale.duration(60),
                    10.0,
                ),
            )
        })
        .collect();
    let results = run_all(configs);
    println!(
        "\n  {:>8} {:>18} {:>12}",
        "slice", "avg tput (kb/s)", "switches"
    );
    for (label, r) in &results {
        println!(
            "  {label:>8} {:>18.0} {:>12}",
            r.avg_throughput_bps * 8.0 / 1000.0,
            r.switch_count
        );
    }
    println!("\n  Expected shape: non-monotone — very short slices burn switch overhead,");
    println!("  long slices trip TCP's RTO and slow-start during the 2x absence.");
}

/// Fig. 9: aggregate throughput vs per-AP backhaul bandwidth for the five
/// §4.2 configurations.
pub fn fig9(scale: Scale) {
    header("Figure 9 — throughput micro-benchmark vs backhaul bandwidth per AP");
    println!("Two APs, HTTP bulk downloads, traffic-shaped backhaul");
    let backhauls_mbps = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0];
    println!(
        "\n  {:>8} {:>12} {:>12} {:>16} {:>16} {:>18}",
        "backhaul",
        "one stock",
        "two cards*",
        "Spider(100,0,0)",
        "Spider(50,0,50)",
        "Spider(100,0,100)"
    );
    println!(
        "  {:>8} {:>12} {:>12} {:>16} {:>16} {:>18}",
        "(Mb/s)", "(KB/s)", "(KB/s)", "(KB/s)", "(KB/s)", "(KB/s)"
    );
    for mbps in backhauls_mbps {
        let bps = (mbps * 1_000_000.0) as u64;
        let one_stock = lab_world(
            scale.seed,
            vec![lab_site(1, 0.0, Channel::CH1, bps)],
            SpiderConfig::single_channel_single_ap(Channel::CH1),
            scale.duration(40),
            10.0,
        );
        // Spider on one channel with two APs — which §4.2 shows equals two
        // physical cards with stock drivers.
        let same_channel = lab_world(
            scale.seed,
            vec![
                lab_site(1, 0.0, Channel::CH1, bps),
                lab_site(2, 8.0, Channel::CH1, bps),
            ],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            scale.duration(40),
            10.0,
        );
        let mk_split = |slice_ms: u64| {
            let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
            spider.schedule = SchedulePolicy::MultiChannel {
                slices: vec![
                    (Channel::CH1, Duration::from_millis(slice_ms)),
                    (Channel::CH11, Duration::from_millis(slice_ms)),
                ],
            };
            lab_world(
                scale.seed,
                vec![
                    lab_site(1, 0.0, Channel::CH1, bps),
                    lab_site(2, 8.0, Channel::CH11, bps),
                ],
                spider,
                scale.duration(40),
                10.0,
            )
        };
        let results = run_all(vec![
            ("one".into(), one_stock),
            ("same".into(), same_channel),
            ("s50".into(), mk_split(50)),
            ("s100".into(), mk_split(100)),
        ]);
        let get = |k: &str| {
            results
                .iter()
                .find(|(l, _)| l == k)
                .map(|(_, r)| r.avg_throughput_kbps())
                .unwrap_or(0.0)
        };
        println!(
            "  {mbps:>8.1} {:>12.0} {:>12.0} {:>16.0} {:>16.0} {:>18.0}",
            get("one"),
            2.0 * get("one"), // two independent cards: twice one card
            get("same"),
            get("s50"),
            get("s100"),
        );
    }
    println!("\n  * two physical cards with stock drivers = 2× the single-card figure.");
    println!("  Expected shape: Spider(100,0,0) ≈ two cards (no switching on one channel);");
    println!("  the split-channel schedules lose throughput, less so with faster switching.");
}

/// Table 1: channel-switch latency vs number of connected interfaces.
pub fn table1(scale: Scale) {
    header("Table 1 — channel switching latency (ms) of the Spider driver");
    let cfg = RadioConfig::default();
    let mut rng = Rng::new(scale.seed);
    println!(
        "\n  {:<24} {:>10} {:>10}",
        "connected interfaces", "mean", "std dev"
    );
    for connected in 0..=4usize {
        let mut s = Summary::new();
        for _ in 0..4_000 {
            s.record(cfg.switch_latency(connected, &mut rng).as_secs_f64() * 1e3);
        }
        println!("  {connected:<24} {:>10.3} {:>10.3}", s.mean(), s.std_dev());
    }
    println!("\n  Paper: 4.942/4.952/5.266/5.546/5.945 ms — a hardware reset plus one");
    println!("  PSM frame per associated AP on the old channel and a poll on the new.");
}
