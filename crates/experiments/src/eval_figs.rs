//! The outdoor system evaluation: Table 2, Figure 10, Table 4, §4.4's
//! density analysis, and the §4.7 usability comparison (Figs. 13–14).

use sim_engine::rng::Rng;
use sim_engine::time::Duration;
use spider_core::config::{SchedulePolicy, SpiderConfig};
use spider_core::world::RunResult;
use wifi_mac::channel::Channel;
use workload::mesh::{self, MeshWorkloadParams};

use crate::common::{
    amherst_sites, boston_sites, header, print_cdf, print_quantiles, run_all, vehicular_world,
    Scale,
};

/// The six Table 2 rows. Multi-channel rows use the paper's static
/// schedule of 200 ms on each of channels 1, 6, 11 (D = 600 ms).
fn table2_configs(scale: Scale) -> Vec<(String, spider_core::world::WorldConfig)> {
    let slice = Duration::from_millis(200);
    let secs = 1_800; // the paper drove 30–60 minutes
    vec![
        (
            "(1) Channel 1, Multi-AP".into(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                SpiderConfig::single_channel_multi_ap(Channel::CH1),
                scale.duration(secs),
                10.0,
            ),
        ),
        (
            "(2) Channel 1, Single-AP".into(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                SpiderConfig::single_channel_single_ap(Channel::CH1),
                scale.duration(secs),
                10.0,
            ),
        ),
        (
            "(3) 3 channels, Multi-AP".into(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                SpiderConfig::multi_channel_multi_ap(slice),
                scale.duration(secs),
                10.0,
            ),
        ),
        (
            "(4) 3 channels, Single-AP".into(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                SpiderConfig::multi_channel_single_ap(slice),
                scale.duration(secs),
                10.0,
            ),
        ),
        (
            "(2*) Channel 6, Single-AP (Boston)".into(),
            vehicular_world(
                scale.seed,
                boston_sites(scale.seed),
                SpiderConfig::single_channel_single_ap(Channel::CH6),
                scale.duration(secs),
                10.0,
            ),
        ),
        (
            "MadWiFi stock driver".into(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                SpiderConfig::stock_madwifi(),
                scale.duration(secs),
                10.0,
            ),
        ),
    ]
}

/// Table 2 + Figure 10: the headline evaluation.
pub fn table2_fig10(scale: Scale) {
    header("Table 2 — average throughput and connectivity per configuration");
    let results = run_all(table2_configs(scale));
    println!(
        "\n  {:<38} {:>14} {:>13} {:>9} {:>9}",
        "configuration", "tput (KB/s)", "connectivity", "joins", "max APs"
    );
    for (label, r) in &results {
        println!(
            "  {:<38} {:>14.1} {:>12.1}% {:>9} {:>9}",
            label,
            r.avg_throughput_kbps(),
            100.0 * r.connectivity,
            r.join_times.count(),
            r.max_concurrent_aps
        );
    }
    let get = |k: &str| {
        results
            .iter()
            .find(|(l, _)| l.starts_with(k))
            .map(|(_, r)| r.clone())
            .expect("config present")
    };
    let multi = get("(1)");
    let single = get("(2)");
    let three = get("(3)");
    let stock = get("MadWiFi");
    println!("\n  Headline ratios (paper: ≈4× throughput, connectivity best on 3 channels):");
    println!(
        "    single-channel multi-AP vs single-AP throughput: {:.1}×   (paper ≈ 4.3×)",
        multi.avg_throughput_bps / single.avg_throughput_bps.max(1.0)
    );
    println!(
        "    multi-AP(3ch) vs single-AP(1ch) connectivity:    {:.2} vs {:.2} (paper 44.6% vs 22.3%)",
        three.connectivity, single.connectivity
    );
    println!(
        "    Spider(1) vs stock MadWiFi: {:.1}× throughput, {:.1}× connectivity (paper 2.5× / 2×)",
        multi.avg_throughput_bps / stock.avg_throughput_bps.max(1.0),
        multi.connectivity / stock.connectivity.max(1e-9)
    );

    header("Figure 10 — connection, disruption, and instantaneous-bandwidth CDFs");
    println!("\n  (a) connection durations (s):");
    for key in ["(1)", "(2)", "(3)", "(4)"] {
        let r = get(key);
        print_quantiles(key, &r.connection_durations, "s");
    }
    println!("\n  (b) disruption durations (s):");
    for key in ["(1)", "(2)", "(3)", "(4)"] {
        let r = get(key);
        print_quantiles(key, &r.disruption_durations, "s");
    }
    println!("\n  (c) instantaneous bandwidth (KB per connected second):");
    for key in ["(1)", "(2)", "(3)", "(4)"] {
        let r = get(key);
        let mut kb = sim_engine::stats::Samples::new();
        for &v in r.instantaneous_bandwidth.values() {
            kb.record(v / 1000.0);
        }
        print_quantiles(key, &kb, "KB/s");
    }
    println!("\n  Expected shape: (1) has the best instantaneous bandwidth and longest");
    println!("  connections but the longest disruptions; (3) has the shortest disruptions.");
}

/// §4.4 — effect of AP density: how often is Spider actually holding
/// 1/2/3+ concurrent APs, and what multi-AP buys at this density.
pub fn density(scale: Scale) {
    header("Section 4.4 — effect of AP density (concurrent-association profile)");
    let results = run_all(vec![
        (
            "Channel 1, Multi-AP".into(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                SpiderConfig::single_channel_multi_ap(Channel::CH1),
                scale.duration(1_800),
                10.0,
            ),
        ),
        (
            "Channel 1, Single-AP".into(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                SpiderConfig::single_channel_single_ap(Channel::CH1),
                scale.duration(1_800),
                10.0,
            ),
        ),
    ]);
    for (label, r) in &results {
        let connected_time: f64 = r.concurrency_seconds.iter().skip(1).sum();
        println!(
            "\n  {label}: throughput {:.1} KB/s",
            r.avg_throughput_kbps()
        );
        if connected_time > 0.0 {
            for (n, secs) in r.concurrency_seconds.iter().enumerate().skip(1) {
                if *secs > 0.0 {
                    println!(
                        "    {} concurrent AP(s): {:>5.1}% of connected time",
                        n,
                        100.0 * secs / connected_time
                    );
                }
            }
        }
    }
    println!("\n  Paper: 1 AP ≈ 85%, 2 APs ≈ 10%, 3 APs ≈ 5% of the time — and even so,");
    println!("  multi-AP yields ≈ 4× the single-AP throughput.");
}

/// Table 4: one/two/three-channel equal schedules.
pub fn table4(scale: Scale) {
    header("Table 4 — throughput/connectivity vs number of scheduled channels");
    let mk = |label: &str, schedule: SchedulePolicy| {
        let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
        spider.schedule = schedule;
        (
            label.to_string(),
            vehicular_world(
                scale.seed,
                amherst_sites(scale.seed),
                spider,
                scale.duration(1_800),
                10.0,
            ),
        )
    };
    let results = run_all(vec![
        mk("1 channel", SchedulePolicy::SingleChannel(Channel::CH1)),
        mk(
            "2 channels (equal schedule)",
            SchedulePolicy::equal_two(Duration::from_millis(200)),
        ),
        mk(
            "3 channels (equal schedule)",
            SchedulePolicy::equal_three(Duration::from_millis(200)),
        ),
    ]);
    println!(
        "\n  {:<32} {:>14} {:>14}",
        "schedule", "tput (KB/s)", "connectivity"
    );
    for (label, r) in &results {
        println!(
            "  {:<32} {:>14.1} {:>13.1}%",
            label,
            r.avg_throughput_kbps(),
            100.0 * r.connectivity
        );
    }
    println!("\n  Expected shape: throughput maximal on 1 channel; connectivity maximal");
    println!("  on 3 channels (paper: 121.5/25.1/28.8 KB/s and 35.5/35.8/44.7 %).");
}

/// Figures 13–14: Spider's delivered service vs mesh users' needs.
pub fn fig13_14(scale: Scale, spider_single: &RunResult, spider_multi: &RunResult) {
    header("Figures 13–14 — Spider vs wireless-user connection/disruption needs");
    let mut rng = Rng::new(scale.seed ^ 0x47);
    let params = MeshWorkloadParams::default();
    let user_durations = mesh::duration_samples(&params, 20_000, &mut rng);
    let user_gaps = mesh::gap_samples(&params, 20_000, &mut rng);
    println!(
        "\n  Mesh capture stood in for by a synthetic day ({} users, {} TCP connections",
        mesh::capture::USERS,
        mesh::capture::TCP_CONNECTIONS
    );
    println!(
        "  in the original; {}% HTTP).",
        100 * mesh::capture::HTTP_CONNECTIONS / mesh::capture::TCP_CONNECTIONS
    );
    println!("\n  Figure 13 — connection duration CDFs:");
    print_cdf(
        "users (synthetic mesh capture)",
        &user_durations,
        &[10.0, 30.0, 60.0],
        "s",
    );
    print_cdf(
        "Spider multi-AP (ch1)",
        &spider_single.connection_durations,
        &[10.0, 30.0, 60.0],
        "s",
    );
    print_cdf(
        "Spider multi-AP (multi-channel)",
        &spider_multi.connection_durations,
        &[10.0, 30.0, 60.0],
        "s",
    );
    println!("\n  Figure 14 — disruption / inter-connection CDFs:");
    print_cdf(
        "users inter-connection (synthetic)",
        &user_gaps,
        &[30.0, 120.0, 300.0],
        "s",
    );
    print_cdf(
        "Spider multi-AP (ch1) disruptions",
        &spider_single.disruption_durations,
        &[30.0, 120.0, 300.0],
        "s",
    );
    print_cdf(
        "Spider multi-AP (multi-ch) disruptions",
        &spider_multi.disruption_durations,
        &[30.0, 120.0, 300.0],
        "s",
    );
    println!("\n  Expected shape: Spider's connection lengths cover the users' flow");
    println!("  lengths; multi-channel disruptions are comparable to user gaps.");
}

/// Run the Table 2 configurations once and reuse them for Figs. 13–14.
pub fn usability(scale: Scale) {
    let results = run_all(
        table2_configs(scale)
            .into_iter()
            .filter(|(l, _)| l.starts_with("(1)") || l.starts_with("(3)"))
            .collect(),
    );
    let single = &results
        .iter()
        .find(|(l, _)| l.starts_with("(1)"))
        .expect("cfg 1")
        .1;
    let multi = &results
        .iter()
        .find(|(l, _)| l.starts_with("(3)"))
        .expect("cfg 3")
        .1;
    fig13_14(scale, single, multi);
}
