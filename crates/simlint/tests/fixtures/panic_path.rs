// Library code surfaces typed errors; unwrap/expect/panic crash the
// whole campaign. A fn *named* unwrap is not a call site.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("always present")
}

pub fn unfinished() {
    todo!()
}

pub struct Wrapper(u32);

impl Wrapper {
    pub fn unwrap(self) -> u32 {
        self.0
    }
}
