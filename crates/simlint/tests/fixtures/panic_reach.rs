// The transitive case the lexer could never see: `entry` contains no
// panic of its own, but its call chain bottoms out in an unwaived
// unwrap. The diagnostic renders the shortest witness path.
pub fn entry(world: &World) -> u32 {
    middle(world)
}

fn middle(world: &World) -> u32 {
    deepest(world.slot)
}

fn deepest(v: Option<u32>) -> u32 {
    v.unwrap()
}
