// Sim-tier state must iterate deterministically: HashMap/HashSet have
// process-randomized order. (Doc-comment mentions of HashMap are fine.)
use std::collections::HashMap;

/// Not a violation: the word HashMap in a doc comment.
pub struct Topology {
    pub links: HashMap<u32, u32>,
}
