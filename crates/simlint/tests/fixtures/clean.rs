// A sim-tier file with nothing to flag: ordered maps, virtual time,
// typed errors, total float ordering, seeded randomness.
use std::collections::BTreeMap;

pub fn percentile(xs: &mut Vec<f64>) -> Option<f64> {
    xs.sort_by(f64::total_cmp);
    xs.first().copied()
}

pub fn lookup(m: &BTreeMap<u32, u32>, k: u32) -> Result<u32, String> {
    m.get(&k).copied().ok_or_else(|| format!("missing {k}"))
}
