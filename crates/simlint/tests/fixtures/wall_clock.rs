// Sim-tier code must take time from the event queue, never the host.
pub fn stamp() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
