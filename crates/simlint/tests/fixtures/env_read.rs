// Cross-process byte-identity forbids environment reads in sim code:
// two workers with different environments must produce identical
// RunRecords.
pub fn debug_enabled() -> bool {
    std::env::var("SPIDER_DEBUG").is_ok()
}

pub fn manifest_dir() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}

pub fn maybe() -> Option<&'static str> {
    option_env!("SPIDER_PROFILE")
}
