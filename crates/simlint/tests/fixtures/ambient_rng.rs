// Every random draw must flow from an explicitly seeded, forkable
// generator; entropy-seeded construction and per-process identity are
// nondeterminism by definition. Seeded construction is fine.
pub fn bad_seed() -> u64 {
    let rng = thread_rng();
    rng.gen()
}

pub fn bad_entropy() -> Rng {
    Rng::from_entropy()
}

pub fn bad_identity() -> u32 {
    std::process::id()
}

pub fn good(seed: u64) -> Rng {
    Rng::new(seed)
}
