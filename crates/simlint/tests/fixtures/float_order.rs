// partial_cmp is not a total order over floats (NaN -> None), so sorts
// built on it depend on the input permutation. A PartialOrd *impl* is a
// definition, not a call, and total_cmp is the sanctioned comparator.
pub fn sort_rssi(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
}

pub fn sorted_ok(xs: &mut Vec<f64>) {
    xs.sort_by(f64::total_cmp);
}

pub struct Score(pub f64);

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        self.0.partial_cmp(&other.0)
    }
}
