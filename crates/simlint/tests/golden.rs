//! Golden-file fixtures: one minimal `.rs` per rule (plus a transitive
//! panic chain and a clean file), each paired with a `.expected` file
//! holding the exact rendered diagnostics — rule names, lines, and
//! witness paths are asserted byte-for-byte.
//!
//! Each fixture is linted *as if* it lived at
//! `crates/spider-core/src/fixture_<name>.rs` (sim tier); on disk it
//! lives under `tests/fixtures/`, which the real workspace walk
//! classifies as test tier, so the fixtures never trip the gate on
//! simlint's own tree. For the same reason fixtures must not contain
//! waiver comments: an un-matching waiver in a test-tier file would be
//! `waiver-unused` workspace-wide.
//!
//! To regenerate after an intentional diagnostic change:
//!
//! ```text
//! SIMLINT_BLESS=1 cargo test -p simlint --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use simlint::lint_source;

const FIXTURES: &[&str] = &[
    "unordered_map",
    "wall_clock",
    "panic_path",
    "float_order",
    "env_read",
    "ambient_rng",
    "panic_reach",
    "clean",
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn rendered_diagnostics(name: &str) -> String {
    let src =
        fs::read_to_string(fixture_dir().join(format!("{name}.rs"))).expect("read fixture source");
    let virtual_path = format!("crates/spider-core/src/fixture_{name}.rs");
    let mut lines: Vec<String> = lint_source(&virtual_path, &src)
        .iter()
        .map(|v| v.render())
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[test]
fn every_fixture_matches_its_golden_diagnostics() {
    let bless = std::env::var("SIMLINT_BLESS").is_ok();
    let mut failures = Vec::new();
    for name in FIXTURES {
        let got = rendered_diagnostics(name);
        let expected_path = fixture_dir().join(format!("{name}.expected"));
        if bless {
            fs::write(&expected_path, &got).expect("bless golden file");
            continue;
        }
        let want = fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", expected_path.display()));
        if got != want {
            failures.push(format!(
                "fixture `{name}` diverged from its golden file.\n--- expected\n{want}--- got\n{got}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

#[test]
fn fixture_inventory_covers_every_rule() {
    // Each of the six line rules appears in at least one golden file,
    // panic-reach has its dedicated chain, and the clean fixture is
    // genuinely clean — so a rule silently losing its fixture fails here
    // rather than going unnoticed.
    let mut all = String::new();
    for name in FIXTURES {
        all.push_str(&rendered_diagnostics(name));
    }
    for rule in [
        "unordered-map",
        "wall-clock",
        "panic-path",
        "float-order",
        "env-read",
        "ambient-rng",
        "panic-reach",
    ] {
        assert!(
            all.contains(&format!("error[{rule}]")),
            "no fixture exercises `{rule}`"
        );
    }
    assert_eq!(rendered_diagnostics("clean"), "", "clean fixture flagged");
}

#[test]
fn panic_reach_golden_includes_full_witness_chain() {
    let got = rendered_diagnostics("panic_reach");
    assert!(
        got.contains(
            "entry (crates/spider-core/src/fixture_panic_reach.rs:4) -> \
             middle (crates/spider-core/src/fixture_panic_reach.rs:8) -> \
             deepest (crates/spider-core/src/fixture_panic_reach.rs:12) -> \
             unwrap() at crates/spider-core/src/fixture_panic_reach.rs:13"
        ),
        "witness chain missing or wrong:\n{got}"
    );
}
