//! End-to-end tests of the `simlint` binary: the acceptance criterion is
//! that a seeded violation in a scratch tree produces a non-zero exit and
//! a `file:line: error[rule]` diagnostic on stderr.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A scratch tree under the target tmpdir, unique per test.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simlint-cli-{}-{test}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    dir
}

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("rel path has a parent")).expect("mkdir");
    fs::write(path, contents).expect("write scratch source");
}

fn run_simlint(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--root")
        .arg(root)
        .arg("--json")
        .arg(root.join("simlint.json"))
        .output()
        .expect("spawn simlint binary")
}

#[test]
fn seeded_violation_fails_with_rustc_style_diagnostic() {
    let root = scratch("seeded");
    write(
        &root,
        "crates/spider-core/src/bad.rs",
        "use std::collections::HashMap;\n\
         pub struct S {\n\
         \x20   pub m: HashMap<u32, u32>,\n\
         }\n\
         pub fn f(v: Option<u32>) -> u32 {\n\
         \x20   v.unwrap()\n\
         }\n",
    );
    let out = run_simlint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "seeded violation must fail CI; stderr:\n{stderr}"
    );
    assert_eq!(out.status.code(), Some(1), "violations exit with code 1");
    // rustc-style `file:line: error[rule]` diagnostics, one per site.
    assert!(
        stderr.contains("crates/spider-core/src/bad.rs:1: error[unordered-map]"),
        "missing unordered-map diagnostic:\n{stderr}"
    );
    assert!(
        stderr.contains("crates/spider-core/src/bad.rs:6: error[panic-path]"),
        "missing panic-path diagnostic:\n{stderr}"
    );
    // The machine-readable summary is written even on failure.
    let json = fs::read_to_string(root.join("simlint.json")).expect("json summary");
    assert!(
        json.contains("\"unordered-map\""),
        "json lists the rule: {json}"
    );
    assert!(json.contains("bad.rs"), "json names the file: {json}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn clean_tree_passes() {
    let root = scratch("clean");
    write(
        &root,
        "crates/spider-core/src/good.rs",
        "use std::collections::BTreeMap;\n\
         pub struct S {\n\
         \x20   pub m: BTreeMap<u32, u32>,\n\
         }\n",
    );
    let out = run_simlint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "clean tree must pass; stderr:\n{stderr}"
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn waiver_without_reason_is_rejected() {
    let root = scratch("waiver");
    write(
        &root,
        "crates/sim-engine/src/w.rs",
        "pub fn f(v: Option<u32>) -> u32 {\n\
         \x20   // simlint: allow(panic-path)\n\
         \x20   v.unwrap()\n\
         }\n",
    );
    let out = run_simlint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr.contains("error[waiver-missing-reason]"),
        "a reason-less waiver must be its own violation:\n{stderr}"
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn waiver_with_reason_suppresses_the_violation() {
    let root = scratch("waived-ok");
    write(
        &root,
        "crates/sim-engine/src/w.rs",
        "pub fn f(v: Option<u32>) -> u32 {\n\
         \x20   // simlint: allow(panic-path) — caller guarantees Some; a None is a harness bug\n\
         \x20   v.unwrap()\n\
         }\n",
    );
    let out = run_simlint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "a reasoned waiver must suppress the site; stderr:\n{stderr}"
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn bench_crate_tiering_matches_policy() {
    let root = scratch("bench-tiers");
    // stats.rs is sim tier: the wall clock is banned there.
    write(
        &root,
        "crates/bench/src/stats.rs",
        "pub fn now_ns() -> u128 {\n\
         \x20   std::time::Instant::now().elapsed().as_nanos()\n\
         }\n",
    );
    // timer.rs is lib tier: it may read the clock (it measures it) but
    // answers for panic paths.
    write(
        &root,
        "crates/bench/src/timer.rs",
        "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n\
         pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    // Suite bodies and the gate CLI are bin tier: nothing enforced.
    write(
        &root,
        "crates/bench/src/suites.rs",
        "pub fn setup(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    write(
        &root,
        "crates/bench/src/bin/bench.rs",
        "fn main() { std::env::args().nth(1).unwrap(); }\n",
    );
    let out = run_simlint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("crates/bench/src/stats.rs:2: error[wall-clock]"),
        "stats.rs wall clock must be flagged:\n{stderr}"
    );
    assert!(
        stderr.contains("crates/bench/src/timer.rs:2: error[panic-path]"),
        "timer.rs unwrap must be flagged:\n{stderr}"
    );
    assert!(
        !stderr.contains("timer.rs:1"),
        "timer.rs clock read must be allowed:\n{stderr}"
    );
    assert!(
        !stderr.contains("suites.rs") && !stderr.contains("bin/bench.rs"),
        "bin-tier bench files must be exempt:\n{stderr}"
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn bin_and_test_tiers_are_exempt() {
    let root = scratch("tiers");
    // Experiments (Bin tier): panic paths allowed.
    write(
        &root,
        "crates/experiments/src/main.rs",
        "fn main() { std::env::args().nth(1).unwrap(); }\n",
    );
    // tests/ directory: everything allowed.
    write(
        &root,
        "crates/spider-core/tests/t.rs",
        "use std::collections::HashMap;\n\
         #[test]\n\
         fn t() { let _m: HashMap<u32, u32> = HashMap::new(); }\n",
    );
    let out = run_simlint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "exempt tiers flagged; stderr:\n{stderr}"
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn usage_and_io_errors_exit_2() {
    // Unknown flag: usage error.
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--bogus")
        .output()
        .expect("spawn simlint binary");
    assert_eq!(out.status.code(), Some(2), "unknown flag is a usage error");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
    // Unreadable root: IO error.
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--root")
        .arg("/nonexistent-simlint-root")
        .output()
        .expect("spawn simlint binary");
    assert_eq!(out.status.code(), Some(2), "unreadable root is an IO error");
}

#[test]
fn new_sim_tier_rules_flag_and_lib_tier_does_not() {
    let root = scratch("v2-rules");
    write(
        &root,
        "crates/spider-core/src/bad.rs",
        "pub fn order(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }\n\
         pub fn gate() -> bool { std::env::var(\"X\").is_ok() }\n\
         pub fn seed() -> u64 { thread_rng().gen() }\n",
    );
    // The same constructs are legal in lib tier (campaign reads env for
    // cache dirs, etc.).
    write(
        &root,
        "crates/campaign/src/lib.rs",
        "pub fn gate() -> bool { std::env::var(\"X\").is_ok() }\n",
    );
    let out = run_simlint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("crates/spider-core/src/bad.rs:1: error[float-order]"),
        "partial_cmp call must be flagged:\n{stderr}"
    );
    assert!(
        stderr.contains("crates/spider-core/src/bad.rs:2: error[env-read]"),
        "env read must be flagged:\n{stderr}"
    );
    assert!(
        stderr.contains("crates/spider-core/src/bad.rs:3: error[ambient-rng]"),
        "entropy-seeded rng must be flagged:\n{stderr}"
    );
    assert!(
        !stderr.contains("crates/campaign"),
        "lib tier must not enforce sim-only rules:\n{stderr}"
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn partial_cmp_definition_is_not_flagged() {
    // The v1 lexer could not tell a PartialOrd impl from a call site;
    // the parser can — this is the "parse, don't grep" acceptance test.
    let root = scratch("defn-not-call");
    write(
        &root,
        "crates/sim-engine/src/order.rs",
        "impl PartialOrd for Entry {\n\
         \x20   fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n\
         \x20       Some(self.cmp(other))\n\
         \x20   }\n\
         }\n",
    );
    let out = run_simlint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr:\n{stderr}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn panic_reach_renders_witness_path_across_files() {
    let root = scratch("reach");
    write(
        &root,
        "crates/spider-core/src/world.rs",
        "pub fn drive() { geo::rank::pick(1); }\n",
    );
    write(
        &root,
        "crates/geo/src/rank.rs",
        "pub fn pick(i: usize) -> u8 { inner(i) }\n\
         fn inner(i: usize) -> u8 { TABLE.get(i).copied().unwrap() }\n",
    );
    let out = run_simlint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("crates/spider-core/src/world.rs:1: error[panic-reach]"),
        "transitive reach must be flagged at the pub fn:\n{stderr}"
    );
    assert!(
        stderr.contains(
            "drive (crates/spider-core/src/world.rs:1) -> \
             pick (crates/geo/src/rank.rs:1) -> \
             inner (crates/geo/src/rank.rs:2) -> \
             unwrap() at crates/geo/src/rank.rs:2"
        ),
        "diagnostic must render the shortest witness call path:\n{stderr}"
    );
    // The artifact carries the reachability section.
    let json = fs::read_to_string(root.join("simlint.json")).expect("json summary");
    assert!(json.contains("\"reachability\""), "{json}");
    assert!(json.contains("\"witness\""), "{json}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn unclassified_crate_is_a_lint_error() {
    let root = scratch("unclassified");
    write(&root, "crates/newcomer/src/lib.rs", "pub fn ok() {}\n");
    let out = run_simlint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("crates/newcomer:1: error[unclassified-crate]"),
        "unknown crate dirs must be denied by default:\n{stderr}"
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn warm_run_hits_cache_for_every_file_and_reports_it() {
    let root = scratch("cache");
    write(&root, "crates/spider-core/src/a.rs", "pub fn a() {}\n");
    write(&root, "crates/geo/src/b.rs", "pub fn b() {}\n");
    let cold = run_simlint(&root);
    assert!(cold.status.success());
    assert!(
        String::from_utf8_lossy(&cold.stdout).contains("0 warm / 2 parsed"),
        "cold run parses everything: {}",
        String::from_utf8_lossy(&cold.stdout)
    );
    let warm = run_simlint(&root);
    assert!(warm.status.success());
    let stdout = String::from_utf8_lossy(&warm.stdout);
    assert!(
        stdout.contains("cache: 2/2 files warm (100%)"),
        "warm run must hit the cache for every file and say so: {stdout}"
    );
    // --no-cache forces a full parse again.
    let nocache = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--root")
        .arg(&root)
        .arg("--json")
        .arg(root.join("simlint.json"))
        .arg("--no-cache")
        .output()
        .expect("spawn simlint binary");
    assert!(
        String::from_utf8_lossy(&nocache.stdout).contains("cache off"),
        "{}",
        String::from_utf8_lossy(&nocache.stdout)
    );
    // Editing a file invalidates exactly that file.
    write(&root, "crates/geo/src/b.rs", "pub fn b() { let _x = 1; }\n");
    let edited = run_simlint(&root);
    assert!(
        String::from_utf8_lossy(&edited.stdout).contains("cache: 1 warm / 1 parsed"),
        "{}",
        String::from_utf8_lossy(&edited.stdout)
    );
    fs::remove_dir_all(&root).ok();
}
