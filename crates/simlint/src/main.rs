//! The `simlint` CLI: lint the workspace (or `--root <dir>`), print
//! rustc-style diagnostics to stderr, write the JSON summary, exit non-zero
//! on any violation.
//!
//! ```text
//! simlint [--root <dir>] [--json <path>] [--quiet]
//! ```
//!
//! Defaults: root = the workspace this binary was built in (its own
//! manifest dir's grandparent), json = `<root>/target/simlint.json`.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{json_summary, lint_tree, Summary};

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    // The workspace root is two levels up from this crate's manifest —
    // baked in at compile time, which is exactly right for an in-tree tool.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .ok_or_else(|| "cannot locate workspace root".to_string())?;
    let mut args = Args {
        root: default_root,
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a value".to_string())?,
                );
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--json needs a value".to_string())?,
                ));
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                println!("usage: simlint [--root <dir>] [--json <path>] [--quiet]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let (files_checked, violations) =
        lint_tree(&args.root).map_err(|e| format!("walking {}: {e}", args.root.display()))?;
    let summary = Summary {
        files_checked,
        violations,
    };
    for v in &summary.violations {
        eprintln!("{}", v.render());
    }
    let json_path = args
        .json
        .unwrap_or_else(|| args.root.join("target/simlint.json"));
    if let Some(dir) = json_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    std::fs::write(&json_path, json_summary(&summary))
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    if !args.quiet {
        if summary.is_clean() {
            println!(
                "simlint: {} files checked, 0 errors ({})",
                summary.files_checked,
                json_path.display()
            );
        } else {
            eprintln!(
                "simlint: {} files checked, {} error(s); see {}",
                summary.files_checked,
                summary.violations.len(),
                json_path.display()
            );
        }
    }
    Ok(summary.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("simlint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
