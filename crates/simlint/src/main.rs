//! The `simlint` CLI: lint the workspace (or `--root <dir>`), print
//! rustc-style diagnostics to stderr, write the JSON summary, exit
//! non-zero on any violation.
//!
//! ```text
//! simlint [--root <dir>] [--json <path>] [--cache <path>] [--no-cache] [--quiet]
//! ```
//!
//! Defaults: root = the workspace this binary was built in (its own
//! manifest dir's grandparent), json = `<root>/target/SIMLINT.json`,
//! cache = `<root>/target/simlint-cache.json`.
//!
//! # Exit-code contract
//!
//! Mirrors the bench binary's contract so scripts can branch without
//! parsing output:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | tree is clean |
//! | 1 | at least one violation (diagnostics on stderr) |
//! | 2 | usage or IO error (bad flag, unreadable root, unwritable json) |

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{analyze_tree, json_summary, AnalyzeOptions};

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    cache: Option<PathBuf>,
    no_cache: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    // The workspace root is two levels up from this crate's manifest —
    // baked in at compile time, which is exactly right for an in-tree tool.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .ok_or_else(|| "cannot locate workspace root".to_string())?;
    let mut args = Args {
        root: default_root,
        json: None,
        cache: None,
        no_cache: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a value".to_string())?,
                );
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--json needs a value".to_string())?,
                ));
            }
            "--cache" => {
                args.cache = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--cache needs a value".to_string())?,
                ));
            }
            "--no-cache" => args.no_cache = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: simlint [--root <dir>] [--json <path>] [--cache <path>] \
                     [--no-cache] [--quiet]\n\
                     exit codes: 0 clean, 1 violations, 2 usage/IO error"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let opts = AnalyzeOptions {
        cache_path: if args.no_cache {
            None
        } else {
            Some(
                args.cache
                    .clone()
                    .unwrap_or_else(|| args.root.join("target/simlint-cache.json")),
            )
        },
    };
    let summary = analyze_tree(&args.root, &opts)
        .map_err(|e| format!("walking {}: {e}", args.root.display()))?;
    for v in &summary.violations {
        eprintln!("{}", v.render());
    }
    let json_path = args
        .json
        .unwrap_or_else(|| args.root.join("target/SIMLINT.json"));
    if let Some(dir) = json_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    std::fs::write(&json_path, json_summary(&summary))
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    if !args.quiet {
        let cache_line = if !summary.cache.enabled {
            "cache off".to_string()
        } else if summary.cache.warm() {
            format!(
                "cache: {}/{} files warm (100%)",
                summary.cache.hits, summary.files_checked
            )
        } else {
            format!(
                "cache: {} warm / {} parsed",
                summary.cache.hits, summary.cache.misses
            )
        };
        let graph_line = format!(
            "graph: {} fns, {} edges, {} panic sources",
            summary.graph.functions, summary.graph.edges, summary.graph.panic_sources
        );
        if summary.is_clean() {
            println!(
                "simlint: {} files checked, 0 errors; {cache_line}; {graph_line} ({})",
                summary.files_checked,
                json_path.display()
            );
        } else {
            eprintln!(
                "simlint: {} files checked, {} error(s); {cache_line}; {graph_line}; see {}",
                summary.files_checked,
                summary.violations.len(),
                json_path.display()
            );
        }
    }
    Ok(summary.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("simlint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
