//! The incremental fact cache (`target/simlint-cache.json`).
//!
//! [`crate::parse::FileFacts`] is a pure function of a file's bytes, so
//! it is cached per **content hash** (FNV-1a 64): a warm run re-hashes
//! every file (cheap) and skips lexing + parsing for unchanged ones
//! (the expensive part). Only the *syntax facts* are cached — the rule
//! matching and the call-graph/reachability phases re-run every time,
//! which is what keeps cross-file diagnostics (`panic-reach`,
//! workspace-wide `waiver-unused`) correct when one file changes out
//! from under its unchanged neighbors.
//!
//! The cache document embeds a fingerprint derived from
//! [`crate::rules::RULES_REVISION`]; bumping that constant (any change
//! to parsing or rule semantics) invalidates every entry at once. Any
//! read failure — missing file, malformed JSON, wrong fingerprint,
//! wrong shape — degrades silently to a cold run: the cache can slow
//! simlint down, never wrong it.
//!
//! The JSON reader below is deliberately minimal (objects, arrays,
//! strings, booleans, `null`, and *non-negative integers* — the only
//! shapes the writer emits) and panic-free: every index is checked,
//! every surprise returns `None`.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::parse::{CallFact, CallKind, FileFacts, FnFact, SiteFact, WaiverDiag, WaiverFact};
use crate::report::json_string;
use crate::rules::{Rule, RULES_REVISION};

/// FNV-1a 64-bit over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fingerprint() -> String {
    format!("simlint-facts-r{RULES_REVISION}")
}

/// A loaded cache: content-hash-keyed facts per workspace-relative path.
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileFacts)>,
}

impl Cache {
    /// Load from `path`. Any failure (missing, corrupt, stale
    /// fingerprint) yields an empty cache — a cold run, never an error.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = fs::read_to_string(path) else {
            return Cache::default();
        };
        parse_cache(&text).unwrap_or_default()
    }

    /// The cached facts for `rel`, iff its content hash still matches.
    pub fn lookup(&self, rel: &str, hash: u64) -> Option<&FileFacts> {
        match self.entries.get(rel) {
            Some((h, facts)) if *h == hash => Some(facts),
            _ => None,
        }
    }
}

/// Write the cache document for this run's `(rel, hash, facts)` set.
pub fn store(path: &Path, entries: &[(String, u64, &FileFacts)]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = String::with_capacity(entries.len() * 512);
    out.push_str("{\"fingerprint\": ");
    out.push_str(&json_string(&fingerprint()));
    out.push_str(", \"files\": [");
    for (i, (rel, hash, facts)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n {\"path\": ");
        out.push_str(&json_string(rel));
        out.push_str(&format!(", \"hash\": \"{hash:016x}\", \"facts\": "));
        write_facts(&mut out, facts);
        out.push('}');
    }
    out.push_str("\n]}\n");
    fs::write(path, out)
}

// ---------------------------------------------------------------------
// Facts -> JSON

fn write_facts(out: &mut String, f: &FileFacts) {
    out.push_str("{\"rel\": ");
    out.push_str(&json_string(&f.rel));
    out.push_str(", \"fns\": [");
    for (i, x) in f.functions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\": {}, \"qual\": {}, \"mod\": {}, \"line\": {}, \"end\": {}, \
             \"pub\": {}, \"test\": {}}}",
            json_string(&x.name),
            match &x.qualifier {
                Some(q) => json_string(q),
                None => "null".to_string(),
            },
            json_string(&x.module),
            x.line,
            x.end_line,
            x.is_pub,
            x.test
        ));
    }
    out.push_str("], \"calls\": [");
    for (i, x) in f.calls.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let segs: Vec<String> = x.segs.iter().map(|s| json_string(s)).collect();
        out.push_str(&format!(
            "{{\"caller\": {}, \"kind\": \"{}\", \"segs\": [{}], \"line\": {}}}",
            x.caller,
            match x.kind {
                CallKind::Method => "m",
                CallKind::Path => "p",
            },
            segs.join(","),
            x.line
        ));
    }
    out.push_str("], \"sites\": [");
    for (i, x) in f.sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\": {}, \"detail\": {}, \"line\": {}, \"func\": {}, \"test\": {}}}",
            json_string(x.rule.name()),
            json_string(&x.detail),
            x.line,
            match x.func {
                Some(n) => n.to_string(),
                None => "null".to_string(),
            },
            x.test
        ));
    }
    out.push_str("], \"waivers\": [");
    for (i, x) in f.waivers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"line\": {}, \"rule\": {}, \"standalone\": {}}}",
            x.line,
            json_string(x.rule.name()),
            x.standalone
        ));
    }
    out.push_str("], \"diags\": [");
    for (i, x) in f.waiver_diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"line\": {}, \"code\": {}, \"msg\": {}}}",
            x.line,
            json_string(&x.code),
            json_string(&x.message)
        ));
    }
    out.push_str("]}");
}

// ---------------------------------------------------------------------
// JSON -> Facts

/// The JSON shapes the writer emits.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
    fn num(&self) -> Option<usize> {
        match self {
            Json::Num(n) => usize::try_from(*n).ok(),
            _ => None,
        }
    }
    fn boolean(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Reader<'a> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn lit(&mut self, word: &[u8]) -> bool {
        if self.b.len() - self.i >= word.len() && &self.b[self.i..self.i + word.len()] == word {
            self.i += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Option<Json> {
        if depth > MAX_DEPTH {
            return None;
        }
        self.ws();
        match self.b.get(self.i)? {
            b'{' => {
                self.i += 1;
                let mut pairs = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Some(Json::Obj(pairs));
                }
                loop {
                    self.eat(b'"')?;
                    let key = self.string_body()?;
                    self.eat(b':')?;
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.ws();
                    match self.b.get(self.i)? {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Some(Json::Obj(pairs));
                        }
                        _ => return None,
                    }
                }
            }
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Some(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.ws();
                    match self.b.get(self.i)? {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Some(Json::Arr(items));
                        }
                        _ => return None,
                    }
                }
            }
            b'"' => {
                self.i += 1;
                Some(Json::Str(self.string_body()?))
            }
            b't' if self.lit(b"true") => Some(Json::Bool(true)),
            b'f' if self.lit(b"false") => Some(Json::Bool(false)),
            b'n' if self.lit(b"null") => Some(Json::Null),
            b'0'..=b'9' => {
                let mut n: u64 = 0;
                while let Some(d @ b'0'..=b'9') = self.b.get(self.i) {
                    n = n.checked_mul(10)?.checked_add((d - b'0') as u64)?;
                    self.i += 1;
                }
                // Floats/exponents never come from our writer.
                if matches!(self.b.get(self.i), Some(b'.' | b'e' | b'E')) {
                    return None;
                }
                Some(Json::Num(n))
            }
            _ => None,
        }
    }

    /// The body of a string whose opening quote is already consumed.
    fn string_body(&mut self) -> Option<String> {
        let mut out = String::new();
        loop {
            match self.b.get(self.i)? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.b.get(self.i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.b.get(self.i + 1..self.i + 5)?;
                            let s = std::str::from_utf8(hex).ok()?;
                            let code = u32::from_str_radix(s, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                &c if c < 0x80 => {
                    out.push(c as char);
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(self.b.get(self.i..)?).ok()?;
                    let ch = rest.chars().next()?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }
}

fn parse_json(text: &str) -> Option<Json> {
    let mut r = Reader {
        b: text.as_bytes(),
        i: 0,
    };
    let v = r.value(0)?;
    r.ws();
    if r.i == r.b.len() {
        Some(v)
    } else {
        None
    }
}

fn parse_cache(text: &str) -> Option<Cache> {
    let root = parse_json(text)?;
    if root.get("fingerprint")?.str()? != fingerprint() {
        return None;
    }
    let mut entries = BTreeMap::new();
    for item in root.get("files")?.arr()? {
        let rel = item.get("path")?.str()?.to_string();
        let hash = u64::from_str_radix(item.get("hash")?.str()?, 16).ok()?;
        let facts = parse_facts(item.get("facts")?)?;
        entries.insert(rel, (hash, facts));
    }
    Some(Cache { entries })
}

fn parse_facts(v: &Json) -> Option<FileFacts> {
    let mut facts = FileFacts {
        rel: v.get("rel")?.str()?.to_string(),
        ..FileFacts::default()
    };
    for x in v.get("fns")?.arr()? {
        facts.functions.push(FnFact {
            name: x.get("name")?.str()?.to_string(),
            qualifier: match x.get("qual")? {
                Json::Null => None,
                other => Some(other.str()?.to_string()),
            },
            module: x.get("mod")?.str()?.to_string(),
            line: x.get("line")?.num()?,
            end_line: x.get("end")?.num()?,
            is_pub: x.get("pub")?.boolean()?,
            test: x.get("test")?.boolean()?,
        });
    }
    for x in v.get("calls")?.arr()? {
        let mut segs = Vec::new();
        for s in x.get("segs")?.arr()? {
            segs.push(s.str()?.to_string());
        }
        facts.calls.push(CallFact {
            caller: x.get("caller")?.num()?,
            kind: match x.get("kind")?.str()? {
                "m" => CallKind::Method,
                "p" => CallKind::Path,
                _ => return None,
            },
            segs,
            line: x.get("line")?.num()?,
        });
    }
    for x in v.get("sites")?.arr()? {
        facts.sites.push(SiteFact {
            rule: Rule::from_name(x.get("rule")?.str()?)?,
            detail: x.get("detail")?.str()?.to_string(),
            line: x.get("line")?.num()?,
            func: match x.get("func")? {
                Json::Null => None,
                other => Some(other.num()?),
            },
            test: x.get("test")?.boolean()?,
        });
    }
    for x in v.get("waivers")?.arr()? {
        facts.waivers.push(WaiverFact {
            line: x.get("line")?.num()?,
            rule: Rule::from_name(x.get("rule")?.str()?)?,
            standalone: x.get("standalone")?.boolean()?,
        });
    }
    for x in v.get("diags")?.arr()? {
        facts.waiver_diags.push(WaiverDiag {
            line: x.get("line")?.num()?,
            code: x.get("code")?.str()?.to_string(),
            message: x.get("msg")?.str()?.to_string(),
        });
    }
    Some(facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::extract;

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"acb"));
    }

    #[test]
    fn facts_roundtrip_through_cache_file() {
        let src = "use std::collections::HashMap; // simlint: allow(unordered-map) — docs\n\
                   pub fn entry() { mid(); }\n\
                   fn mid(v: Option<u8>) -> u8 { v.unwrap() }\n\
                   // simlint: allow(bogus) — not a rule\n";
        let facts = extract("crates/spider-core/src/x.rs", src);
        assert!(!facts.functions.is_empty());
        assert!(!facts.calls.is_empty());
        assert!(!facts.sites.is_empty());
        assert!(!facts.waivers.is_empty());
        assert!(!facts.waiver_diags.is_empty());

        let dir = std::env::temp_dir().join(format!("simlint-cache-test-{}", std::process::id()));
        let path = dir.join("cache.json");
        let hash = fnv1a64(src.as_bytes());
        store(
            &path,
            &[("crates/spider-core/src/x.rs".to_string(), hash, &facts)],
        )
        .unwrap();

        let cache = Cache::load(&path);
        let loaded = cache.lookup("crates/spider-core/src/x.rs", hash).unwrap();
        assert_eq!(loaded, &facts);
        // Stale hash misses.
        assert!(cache
            .lookup("crates/spider-core/src/x.rs", hash ^ 1)
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_stale_cache_degrades_to_cold() {
        let dir = std::env::temp_dir().join(format!("simlint-cache-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        std::fs::write(&path, "{not json").unwrap();
        assert!(Cache::load(&path).entries.is_empty());

        std::fs::write(
            &path,
            "{\"fingerprint\": \"simlint-facts-r0\", \"files\": []}",
        )
        .unwrap();
        assert!(Cache::load(&path).entries.is_empty());

        // Missing file entirely.
        assert!(Cache::load(&dir.join("nope.json")).entries.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mini_json_rejects_trailing_garbage_and_floats() {
        assert!(parse_json("{\"a\": 1} extra").is_none());
        assert!(parse_json("{\"a\": 1.5}").is_none());
        assert!(parse_json("{\"a\": -1}").is_none());
        assert_eq!(
            parse_json("[true, false, null, 7, \"x\\u0041\"]"),
            Some(Json::Arr(vec![
                Json::Bool(true),
                Json::Bool(false),
                Json::Null,
                Json::Num(7),
                Json::Str("xA".to_string()),
            ]))
        );
    }
}
