//! The item parser: from blanked code ([`crate::lexer`]) to a per-file
//! fact table — items, call sites, and rule-relevant expression sites.
//!
//! v1 of simlint matched words on lines; this module is why v2 can do
//! better. It tokenizes the lexer's blanked code (so strings and comments
//! are already gone) and walks the token stream with a scope stack,
//! recognizing:
//!
//! * **items** — `fn` (with qualified names through `impl`/`trait`/`mod`
//!   scopes, `pub`-ness, and body span), `impl` blocks (self-type
//!   extraction, including `impl Trait for Type`), `trait` and `mod`
//!   scopes;
//! * **call sites** — free calls (`helper(`), path calls
//!   (`geo::contention::score(`, `Self::helper(`, turbofish-tolerant),
//!   and method calls (`.record(`), each attributed to the innermost
//!   enclosing function — these become the call-graph edges;
//! * **rule sites** — the expression-level facts the rules consume:
//!   panic sites (`unwrap(`/`expect(` *calls*, `panic!`-family macros),
//!   unordered-map words, wall-clock paths, `partial_cmp` calls,
//!   ambient-env reads, and entropy-seeded RNG constructions.
//!
//! The parser is deliberately heuristic — it does not resolve types or
//! expand macros — but because it distinguishes *definitions* from
//! *calls* it already beats the lexer where it matters: `fn partial_cmp`
//! in a `PartialOrd` impl is not a `partial_cmp` call, and a function
//! named `unwrap` is not an `unwrap()` site.
//!
//! Everything extracted here is pure data ([`FileFacts`]) keyed only by
//! the file's contents, which is what makes the incremental cache
//! ([`crate::cache`]) sound: facts are cached per content hash, and the
//! cheap phases (rule matching, graph analysis) re-run every time.

use crate::lexer::{lex, test_scoped_lines, LexedFile};
use crate::rules::{parse_waiver, Rule};

/// One token of blanked code. Lines are 0-based here; diagnostics add 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 0-based source line the token starts on.
    pub line: usize,
    /// Payload.
    pub kind: Tok,
}

/// Token payload: identifiers and single-character punctuation. Numeric
/// literals are consumed and dropped (they cannot carry rule facts), and
/// whitespace never produces a token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` is two `:` tokens).
    Punct(char),
}

/// A function item (with a body) found in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFact {
    /// Bare name (`step`).
    pub name: String,
    /// Enclosing `impl`/`trait` self-type name (`World`), if any.
    pub qualifier: Option<String>,
    /// Enclosing module path inside the file (`"imp::detail"`, `""` at
    /// file top level).
    pub module: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace (best effort).
    pub end_line: usize,
    /// Declared with a bare `pub` (restricted `pub(crate)` etc. is false).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` item.
    pub test: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(…)` — receiver type unknown.
    Method,
    /// `a::b::name(…)` or bare `name(…)` (a one-segment path).
    Path,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFact {
    /// Index into [`FileFacts::functions`] of the enclosing function.
    pub caller: usize,
    /// Method or path call.
    pub kind: CallKind,
    /// Path segments (method calls have exactly one).
    pub segs: Vec<String>,
    /// 1-based line of the callee name.
    pub line: usize,
}

/// One rule-relevant expression site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteFact {
    /// The rule this site can violate.
    pub rule: Rule,
    /// The matched construct (`"unwrap"`, `"std::env::var"`, …) — used in
    /// the diagnostic message.
    pub detail: String,
    /// 1-based line.
    pub line: usize,
    /// Enclosing function, if inside a body (panic sites use this to
    /// become call-graph panic sources).
    pub func: Option<usize>,
    /// Inside `#[cfg(test)]` code (exempt from enforcement).
    pub test: bool,
}

/// A syntactically valid waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverFact {
    /// 0-based line the comment starts on.
    pub line: usize,
    /// Waived rule.
    pub rule: Rule,
    /// The waiver's line has no code of its own, so it shields the next
    /// line (or, for `panic-reach`, the next `fn`).
    pub standalone: bool,
}

/// A malformed-waiver diagnostic found during extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverDiag {
    /// 1-based line.
    pub line: usize,
    /// Diagnostic code (`waiver-missing-reason`, `waiver-unknown-rule`).
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

/// Everything simlint knows about one file, as pure data. This is the
/// unit the incremental cache stores: it is a function of the file's
/// bytes only, so a content-hash hit can skip lexing and parsing while
/// the rule and graph phases still re-run fresh every time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileFacts {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Function items, in source order.
    pub functions: Vec<FnFact>,
    /// Call sites, in source order.
    pub calls: Vec<CallFact>,
    /// Rule-relevant sites, in source order.
    pub sites: Vec<SiteFact>,
    /// Valid waivers.
    pub waivers: Vec<WaiverFact>,
    /// Malformed-waiver diagnostics.
    pub waiver_diags: Vec<WaiverDiag>,
}

/// Lex and parse `source` into its fact table.
pub fn extract(rel: &str, source: &str) -> FileFacts {
    let lexed = lex(source);
    let scoped = test_scoped_lines(&lexed);
    extract_lexed(rel, &lexed, &scoped)
}

/// Parse an already-lexed file (used by [`crate::rules::lint_file`]).
pub fn extract_lexed(rel: &str, lexed: &LexedFile, test_scoped: &[bool]) -> FileFacts {
    let mut facts = FileFacts {
        rel: rel.to_string(),
        ..FileFacts::default()
    };
    collect_waivers(lexed, &mut facts);
    let toks = tokenize(lexed);
    parse_tokens(&toks, test_scoped, &mut facts);
    facts
}

/// Scan every comment for waivers (valid and malformed).
fn collect_waivers(lexed: &LexedFile, facts: &mut FileFacts) {
    for (ln, line) in lexed.lines.iter().enumerate() {
        for comment in &line.comments {
            match parse_waiver(comment) {
                Ok(None) => {}
                Ok(Some((rule, _reason))) => facts.waivers.push(WaiverFact {
                    line: ln,
                    rule,
                    standalone: line.code.trim().is_empty(),
                }),
                Err((code, message)) => facts.waiver_diags.push(WaiverDiag {
                    line: ln + 1,
                    code,
                    message,
                }),
            }
        }
    }
}

/// Tokenize blanked code, line by line (identifiers never span lines).
pub fn tokenize(lexed: &LexedFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (ln, line) in lexed.lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_digit() {
                // Numeric literal: digits, radix/float/exponent/suffix
                // runs, all dropped. `1.max(x)` stops before the `.`
                // because `m` is not a digit.
                let mut j = i + 1;
                loop {
                    while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    if j + 1 < chars.len()
                        && chars[j] == '.'
                        && chars[j + 1].is_ascii_digit()
                        && !matches!(chars.get(j.wrapping_sub(1)), Some('.'))
                    {
                        j += 2;
                        continue;
                    }
                    if j < chars.len()
                        && (chars[j] == '+' || chars[j] == '-')
                        && matches!(chars.get(j.wrapping_sub(1)), Some('e') | Some('E'))
                        && matches!(chars.get(j + 1), Some(d) if d.is_ascii_digit())
                    {
                        j += 2;
                        continue;
                    }
                    break;
                }
                i = j;
            } else if c.is_alphabetic() || c == '_' {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.push(Token {
                    line: ln,
                    kind: Tok::Ident(chars[i..j].iter().collect()),
                });
                i = j;
            } else {
                out.push(Token {
                    line: ln,
                    kind: Tok::Punct(c),
                });
                i += 1;
            }
        }
    }
    out
}

/// What a `{` opened.
#[derive(Debug, Clone)]
enum Scope {
    Mod(String),
    Impl(String),
    Trait(String),
    Fn(usize),
    Block,
}

/// Keywords that can never be a call or a rule site by themselves.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "static", "struct", "super", "trait", "true", "type", "unsafe", "use",
    "where", "while",
];

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i) {
        Some(Token {
            kind: Tok::Ident(s),
            ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i) {
        Some(Token {
            kind: Tok::Punct(c),
            ..
        }) => Some(*c),
        _ => None,
    }
}

/// Skip a balanced `<…>` starting at `i` (which must point at `<`),
/// tolerating `->` arrows inside (e.g. `fn f<T: Fn() -> u32>`). Returns
/// the index just past the closing `>`.
fn skip_angles(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match punct_at(toks, j) {
            Some('-') if punct_at(toks, j + 1) == Some('>') => {
                j += 2;
                continue;
            }
            Some('<') => depth += 1,
            Some('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skip a balanced `(…)` starting at `i` (which must point at `(`).
fn skip_parens(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match punct_at(toks, j) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skip a turbofish (`::<…>`) at `i`, if present.
fn skip_turbofish(toks: &[Token], i: usize) -> usize {
    if punct_at(toks, i) == Some(':')
        && punct_at(toks, i + 1) == Some(':')
        && punct_at(toks, i + 2) == Some('<')
    {
        skip_angles(toks, i + 2)
    } else {
        i
    }
}

/// Is the `fn` at token index `i` preceded by a bare `pub`? Skips
/// qualifier keywords (`const unsafe async extern`) and rejects
/// restricted visibility (`pub(crate)` etc.).
fn is_pub_fn(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            Tok::Ident(s) if matches!(s.as_str(), "const" | "unsafe" | "async" | "extern") => {}
            Tok::Ident(s) if s == "pub" => {
                // `pub` directly: bare visibility. (`pub(crate) fn` puts a
                // `)` between `pub` and `fn`, handled below.)
                return true;
            }
            Tok::Punct(')') => {
                // Possibly `pub(…)`. Walk back over the parens.
                let mut depth = 0i32;
                while j > 0 {
                    match punct_at(toks, j) {
                        Some(')') => depth += 1,
                        Some('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
                // Restricted visibility is not public API.
                return false;
            }
            _ => return false,
        }
    }
    false
}

/// Extract the self-type name from an `impl` header: the last identifier
/// of the type path after `for` (or after the generics when there is no
/// `for`), stopping at `<`, `where`, or the opening brace.
fn impl_self_type(toks: &[Token], start: usize, brace: usize) -> String {
    let mut i = start;
    // Skip `impl<…>` generics.
    if punct_at(toks, i) == Some('<') {
        i = skip_angles(toks, i);
    }
    // If a `for` appears at angle depth 0, the self type follows it.
    let mut scan = i;
    let mut after_for = None;
    while scan < brace {
        match &toks[scan].kind {
            Tok::Ident(s) if s == "for" => {
                after_for = Some(scan + 1);
                // keep scanning: `for` inside generics was skipped above,
                // the first depth-0 `for` wins.
                break;
            }
            Tok::Punct('<') => {
                scan = skip_angles(toks, scan);
                continue;
            }
            Tok::Ident(s) if s == "where" => break,
            _ => {}
        }
        scan += 1;
    }
    let mut i = after_for.unwrap_or(i);
    let mut last = String::new();
    while i < brace {
        match &toks[i].kind {
            Tok::Ident(s) if s == "where" => break,
            Tok::Ident(s) => last = s.clone(),
            Tok::Punct('<') => {
                i = skip_angles(toks, i);
                continue;
            }
            Tok::Punct('{') => break,
            _ => {}
        }
        i += 1;
    }
    last
}

/// Words that are rule sites wherever they appear (call or not).
fn bare_site(word: &str) -> Option<(Rule, &'static str)> {
    match word {
        "HashMap" => Some((Rule::UnorderedMap, "HashMap")),
        "HashSet" => Some((Rule::UnorderedMap, "HashSet")),
        "RandomState" => Some((Rule::UnorderedMap, "RandomState")),
        "hash_map" => Some((Rule::UnorderedMap, "hash_map")),
        "hash_set" => Some((Rule::UnorderedMap, "hash_set")),
        "SystemTime" => Some((Rule::WallClock, "SystemTime")),
        "thread_rng" => Some((Rule::AmbientRng, "thread_rng")),
        "from_entropy" => Some((Rule::AmbientRng, "from_entropy")),
        "OsRng" => Some((Rule::AmbientRng, "OsRng")),
        "getrandom" => Some((Rule::AmbientRng, "getrandom")),
        _ => None,
    }
}

/// `std::env` reads that break cross-process byte-identity.
const ENV_FNS: &[&str] = &["var", "vars", "var_os", "args", "args_os", "temp_dir"];

/// The main parse loop: one pass over the token stream with a scope
/// stack, emitting functions, calls, and sites into `facts`.
fn parse_tokens(toks: &[Token], test_scoped: &[bool], facts: &mut FileFacts) {
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0usize;

    let is_test_line = |line: usize| -> bool { test_scoped.get(line).copied().unwrap_or(false) };

    while i < toks.len() {
        let line = toks[i].line;
        match &toks[i].kind {
            Tok::Punct('{') => {
                scopes.push(Scope::Block);
                i += 1;
            }
            Tok::Punct('}') => {
                if let Some(Scope::Fn(fx)) = scopes.last() {
                    if let Some(f) = facts.functions.get_mut(*fx) {
                        f.end_line = line + 1;
                    }
                }
                scopes.pop();
                i += 1;
            }
            Tok::Ident(word) => {
                match word.as_str() {
                    "mod" => {
                        if let Some(name) = ident_at(toks, i + 1) {
                            let name = name.to_string();
                            match punct_at(toks, i + 2) {
                                Some('{') => {
                                    scopes.push(Scope::Mod(name));
                                    i += 3;
                                }
                                _ => i += 2,
                            }
                        } else {
                            i += 1;
                        }
                    }
                    "impl" => {
                        // Find the opening brace of the impl body (or a
                        // `;` first, which would be e.g. `impl Trait` in
                        // type position — not an item).
                        let mut j = i + 1;
                        let mut brace = None;
                        while j < toks.len() {
                            match punct_at(toks, j) {
                                Some('<') => {
                                    j = skip_angles(toks, j);
                                    continue;
                                }
                                Some('(') => {
                                    j = skip_parens(toks, j);
                                    continue;
                                }
                                Some('{') => {
                                    brace = Some(j);
                                    break;
                                }
                                Some(';') | Some(',') | Some(')') | Some('>') => break,
                                _ => {}
                            }
                            j += 1;
                        }
                        match brace {
                            Some(b) => {
                                let name = impl_self_type(toks, i + 1, b);
                                scopes.push(Scope::Impl(name));
                                i = b + 1;
                            }
                            None => i += 1,
                        }
                    }
                    "trait" => {
                        let name = ident_at(toks, i + 1).unwrap_or_default().to_string();
                        let mut j = i + 1;
                        let mut brace = None;
                        while j < toks.len() {
                            match punct_at(toks, j) {
                                Some('<') => {
                                    j = skip_angles(toks, j);
                                    continue;
                                }
                                Some('{') => {
                                    brace = Some(j);
                                    break;
                                }
                                Some(';') => break,
                                _ => {}
                            }
                            j += 1;
                        }
                        match brace {
                            Some(b) => {
                                scopes.push(Scope::Trait(name));
                                i = b + 1;
                            }
                            None => i += 1,
                        }
                    }
                    "fn" => {
                        let Some(name) = ident_at(toks, i + 1) else {
                            // `fn(` type position (`f: fn(u32)`).
                            i += 1;
                            continue;
                        };
                        let name = name.to_string();
                        let is_pub = is_pub_fn(toks, i);
                        let decl_line = line;
                        // Skip generics, then params, then scan the
                        // return type / where clause for `{` or `;` at
                        // bracket depth 0.
                        let mut j = i + 2;
                        if punct_at(toks, j) == Some('<') {
                            j = skip_angles(toks, j);
                        }
                        if punct_at(toks, j) == Some('(') {
                            j = skip_parens(toks, j);
                        }
                        let mut bracket = 0i32;
                        let mut body = None;
                        while j < toks.len() {
                            match punct_at(toks, j) {
                                Some('<') => {
                                    j = skip_angles(toks, j);
                                    continue;
                                }
                                Some('(') => {
                                    j = skip_parens(toks, j);
                                    continue;
                                }
                                Some('[') => bracket += 1,
                                Some(']') => bracket -= 1,
                                Some('{') if bracket == 0 => {
                                    body = Some(j);
                                    break;
                                }
                                Some(';') if bracket == 0 => break,
                                _ => {}
                            }
                            j += 1;
                        }
                        match body {
                            Some(b) => {
                                let (qualifier, module) = scope_context(&scopes);
                                facts.functions.push(FnFact {
                                    name,
                                    qualifier,
                                    module,
                                    line: decl_line + 1,
                                    end_line: decl_line + 1,
                                    is_pub,
                                    test: is_test_line(decl_line),
                                });
                                scopes.push(Scope::Fn(facts.functions.len() - 1));
                                i = b + 1;
                            }
                            None => i = j + 1, // bodyless decl
                        }
                    }
                    _ => {
                        i = process_ident(toks, i, &scopes, test_scoped, facts);
                    }
                }
            }
            _ => i += 1,
        }
    }
}

/// The qualifier (innermost impl/trait self type) and module path of the
/// current scope stack.
fn scope_context(scopes: &[Scope]) -> (Option<String>, String) {
    let mut qualifier = None;
    let mut mods: Vec<&str> = Vec::new();
    for s in scopes {
        match s {
            Scope::Impl(n) | Scope::Trait(n) if !n.is_empty() => qualifier = Some(n.clone()),
            Scope::Mod(n) => mods.push(n),
            _ => {}
        }
    }
    (qualifier, mods.join("::"))
}

/// Innermost enclosing function index, if any.
fn enclosing_fn(scopes: &[Scope]) -> Option<usize> {
    scopes.iter().rev().find_map(|s| match s {
        Scope::Fn(fx) => Some(*fx),
        _ => None,
    })
}

/// Handle one non-keyword identifier: macro sites, bare-word sites, path
/// and method calls, and the call-position rule sites. Returns the index
/// to continue from.
fn process_ident(
    toks: &[Token],
    i: usize,
    scopes: &[Scope],
    test_scoped: &[bool],
    facts: &mut FileFacts,
) -> usize {
    let line = toks[i].line;
    let test = test_scoped.get(line).copied().unwrap_or(false);
    let func = enclosing_fn(scopes);
    let word = match ident_at(toks, i) {
        Some(w) => w.to_string(),
        None => return i + 1,
    };

    // Sites found while scanning this identifier (and any path it heads),
    // applied to `facts` at the end.
    let mut found: Vec<(Rule, String)> = Vec::new();
    let mut call: Option<CallFact> = None;
    let next_i;

    // Bare-word sites fire regardless of call position (including inside
    // `use` statements and type positions).
    if let Some((rule, detail)) = bare_site(&word) {
        found.push((rule, detail.to_string()));
    }

    if punct_at(toks, i + 1) == Some('!') && punct_at(toks, i + 2) != Some('=') {
        // Macro site: `name!` (the `!=` guard keeps comparisons out).
        match word.as_str() {
            "panic" | "todo" | "unimplemented" => found.push((Rule::PanicPath, word.clone())),
            "env" | "option_env" => found.push((Rule::EnvRead, format!("{word}!"))),
            _ => {}
        }
        next_i = i + 2;
    } else if i >= 2 && punct_at(toks, i - 1) == Some(':') && punct_at(toks, i - 2) == Some(':') {
        // Continuation segment of a path already consumed by its head.
        next_i = i + 1;
    } else if i >= 1 && punct_at(toks, i - 1) == Some('.') {
        // Method call: `.name…(`.
        let after = skip_turbofish(toks, i + 1);
        if punct_at(toks, after) == Some('(') {
            match word.as_str() {
                "unwrap" | "expect" => found.push((Rule::PanicPath, word.clone())),
                "partial_cmp" => found.push((Rule::FloatOrder, "partial_cmp".to_string())),
                _ => {
                    if !KEYWORDS.contains(&word.as_str()) && func.is_some() {
                        call = Some(CallFact {
                            caller: func.unwrap_or_default(),
                            kind: CallKind::Method,
                            segs: vec![word.clone()],
                            line: line + 1,
                        });
                    }
                }
            }
        }
        next_i = i + 1;
    } else if KEYWORDS.contains(&word.as_str())
        && !matches!(word.as_str(), "self" | "crate" | "super")
    {
        next_i = i + 1;
    } else {
        // Path head: collect `a::b::c` segments (turbofish-tolerant).
        let mut segs: Vec<String> = vec![word];
        let mut j = i + 1;
        loop {
            let after = skip_turbofish(toks, j);
            if after != j {
                j = after;
                continue;
            }
            if punct_at(toks, j) == Some(':') && punct_at(toks, j + 1) == Some(':') {
                if let Some(next) = ident_at(toks, j + 2) {
                    if next == "_" {
                        break;
                    }
                    segs.push(next.to_string());
                    j += 3;
                    continue;
                }
            }
            break;
        }
        let is_call = punct_at(toks, j) == Some('(');

        // Bare-word sites inside the consumed path (`std::collections::
        // HashMap` is consumed whole, so segments after the head must be
        // checked here).
        for seg in segs.iter().skip(1) {
            if let Some((rule, detail)) = bare_site(seg) {
                found.push((rule, detail.to_string()));
            }
        }
        found.extend(path_sites(&segs, is_call));

        if is_call {
            match segs.last().map(|s| s.as_str()) {
                Some("unwrap") => found.push((Rule::PanicPath, "unwrap".to_string())),
                Some("expect") => found.push((Rule::PanicPath, "expect".to_string())),
                Some("partial_cmp") => found.push((Rule::FloatOrder, "partial_cmp".to_string())),
                _ => {
                    // Strip leading `crate`/`super`/`self` path roots.
                    let cleaned: Vec<String> = segs
                        .iter()
                        .skip_while(|s| matches!(s.as_str(), "crate" | "super" | "self"))
                        .cloned()
                        .collect();
                    let good_last = cleaned
                        .last()
                        .map(|s| !KEYWORDS.contains(&s.as_str()))
                        .unwrap_or(false);
                    if good_last && func.is_some() {
                        call = Some(CallFact {
                            caller: func.unwrap_or_default(),
                            kind: CallKind::Path,
                            segs: cleaned,
                            line: line + 1,
                        });
                    }
                }
            }
        }
        next_i = j.max(i + 1);
    }

    for (rule, detail) in found {
        facts.sites.push(SiteFact {
            rule,
            detail,
            line: line + 1,
            func,
            test,
        });
    }
    if let Some(c) = call {
        facts.calls.push(c);
    }
    next_i
}

/// Path-shaped rule sites: wall-clock paths, env reads, process identity.
fn path_sites(segs: &[String], is_call: bool) -> Vec<(Rule, String)> {
    let mut out = Vec::new();
    let s: Vec<&str> = segs.iter().map(|x| x.as_str()).collect();
    // `std::time::…` (any read of the real clock's types).
    if s.len() >= 2 && s[0] == "std" && s[1] == "time" {
        out.push((Rule::WallClock, "std::time".to_string()));
    }
    // `Instant::now()` — possibly via `std::time::Instant::now()`, which
    // also matched above; dedup happens per (rule, line) at lint time.
    if is_call {
        for w in s.windows(2) {
            if w[0] == "Instant" && w[1] == "now" {
                out.push((Rule::WallClock, "Instant::now".to_string()));
            }
            if w[0] == "process" && w[1] == "id" {
                out.push((Rule::AmbientRng, "process::id".to_string()));
            }
        }
    }
    // `std::env::…` and `env::var(…)`-style reads.
    if s.len() >= 2 && s[0] == "std" && s[1] == "env" {
        let what = if s.len() >= 3 { s[2] } else { "" };
        out.push((Rule::EnvRead, format!("std::env::{what}")));
    } else if s.len() == 2 && s[0] == "env" && ENV_FNS.contains(&s[1]) && is_call {
        out.push((Rule::EnvRead, format!("env::{}", s[1])));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        extract("crates/spider-core/src/x.rs", src)
    }

    #[test]
    fn fn_items_with_qualifiers_and_pub() {
        let f = facts(
            "pub fn free() {}\n\
             pub(crate) fn restricted() {}\n\
             impl World {\n\
                 pub fn step(&mut self) {}\n\
                 fn helper(&self) {}\n\
             }\n\
             impl Iterator for Walker {\n\
                 fn next(&mut self) -> Option<u8> { None }\n\
             }\n\
             mod inner {\n\
                 pub fn nested() {}\n\
             }\n",
        );
        let names: Vec<(String, Option<String>, bool)> = f
            .functions
            .iter()
            .map(|x| (x.name.clone(), x.qualifier.clone(), x.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None, true),
                ("restricted".into(), None, false),
                ("step".into(), Some("World".into()), true),
                ("helper".into(), Some("World".into()), false),
                ("next".into(), Some("Walker".into()), false),
                ("nested".into(), None, true),
            ]
        );
        assert_eq!(f.functions[5].module, "inner");
    }

    #[test]
    fn fn_definitions_are_not_call_sites() {
        // `fn partial_cmp` / `fn unwrap` are definitions, not calls.
        let f = facts(
            "impl PartialOrd for Entry {\n\
                 fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n\
                     Some(self.cmp(other))\n\
                 }\n\
             }\n",
        );
        assert!(f.sites.is_empty(), "{:?}", f.sites);
    }

    #[test]
    fn partial_cmp_call_is_a_float_order_site() {
        let f = facts("fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b); }\n");
        assert_eq!(f.sites.len(), 1);
        assert_eq!(f.sites[0].rule, Rule::FloatOrder);
        assert_eq!(f.sites[0].line, 1);
    }

    #[test]
    fn env_reads_detected() {
        let f = facts(
            "fn f() {\n\
                 let _a = std::env::var(\"X\");\n\
                 let _b = env!(\"PATH\");\n\
                 let _c = option_env!(\"Y\");\n\
             }\n",
        );
        let rules: Vec<(Rule, usize)> = f.sites.iter().map(|s| (s.rule, s.line)).collect();
        assert_eq!(
            rules,
            vec![(Rule::EnvRead, 2), (Rule::EnvRead, 3), (Rule::EnvRead, 4)]
        );
        assert_eq!(f.sites[0].detail, "std::env::var");
    }

    #[test]
    fn ambient_rng_words_and_process_id() {
        let f = facts(
            "fn f() {\n\
                 let _r = thread_rng();\n\
                 let _p = std::process::id();\n\
             }\n",
        );
        let details: Vec<&str> = f.sites.iter().map(|s| s.detail.as_str()).collect();
        assert_eq!(details, vec!["thread_rng", "process::id"]);
        assert!(f.sites.iter().all(|s| s.rule == Rule::AmbientRng));
    }

    #[test]
    fn calls_collected_with_kinds() {
        let f = facts(
            "fn a() { b(); geo::contention::score(1); x.record(2); Self::helper(); }\n\
             fn b() {}\n",
        );
        let calls: Vec<(CallKind, Vec<String>)> =
            f.calls.iter().map(|c| (c.kind, c.segs.clone())).collect();
        assert_eq!(
            calls,
            vec![
                (CallKind::Path, vec!["b".to_string()]),
                (
                    CallKind::Path,
                    vec!["geo".into(), "contention".into(), "score".into()]
                ),
                (CallKind::Method, vec!["record".to_string()]),
                (CallKind::Path, vec!["Self".into(), "helper".into()]),
            ]
        );
        assert!(f.calls.iter().all(|c| c.caller == 0));
    }

    #[test]
    fn panic_sites_attributed_to_enclosing_fn() {
        let f = facts(
            "fn outer(v: Option<u8>) -> u8 {\n\
                 v.unwrap()\n\
             }\n\
             fn later() { panic!(\"x\") }\n",
        );
        assert_eq!(f.sites.len(), 2);
        assert_eq!(f.sites[0].func, Some(0));
        assert_eq!(f.sites[0].detail, "unwrap");
        assert_eq!(f.sites[1].func, Some(1));
        assert_eq!(f.sites[1].detail, "panic");
    }

    #[test]
    fn unwrap_or_is_not_a_panic_site() {
        let f = facts("fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }\n");
        assert!(f.sites.is_empty(), "{:?}", f.sites);
    }

    #[test]
    fn turbofish_calls_still_detected() {
        let f = facts("fn f() { let _: Vec<u8> = it.collect::<Vec<u8>>(); q.unwrap::<u8>(); }\n");
        // collect is a method call; unwrap-with-turbofish is a panic site.
        assert!(f
            .calls
            .iter()
            .any(|c| c.kind == CallKind::Method && c.segs == vec!["collect".to_string()]));
        assert!(f
            .sites
            .iter()
            .any(|s| s.rule == Rule::PanicPath && s.detail == "unwrap"));
    }

    #[test]
    fn cfg_test_functions_marked() {
        let f = facts(
            "fn lib() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t(v: Option<u8>) { v.unwrap(); }\n\
             }\n",
        );
        assert!(!f.functions[0].test);
        assert!(f.functions[1].test);
        assert!(f.sites[0].test);
    }

    #[test]
    fn impl_for_extracts_self_type() {
        let f = facts(
            "impl<T: Clone> fmt::Display for Wrapper<T> {\n\
                 fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result { Ok(()) }\n\
             }\n",
        );
        assert_eq!(f.functions[0].qualifier, Some("Wrapper".to_string()));
    }

    #[test]
    fn body_span_recorded() {
        let f = facts("fn a() {\n  let x = 1;\n}\nfn b() {}\n");
        assert_eq!(f.functions[0].line, 1);
        assert_eq!(f.functions[0].end_line, 3);
        assert_eq!(f.functions[1].line, 4);
    }
}
