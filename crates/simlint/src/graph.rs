//! The workspace call graph and the `panic-reach` analysis.
//!
//! Nodes are the non-test function items from every sim/lib/bin file;
//! edges come from the call sites the parser extracted, resolved by
//! name. Resolution is deliberately an **over-approximation** (no type
//! inference): a method call `.record(…)` edges to every known method
//! named `record`, a path call `geo::score(…)` to every `score` whose
//! qualifier, module, file stem, or crate matches `geo`. Sound for a
//! deny-lint — false edges can only make the lint stricter, and a waiver
//! with a reason is the documented escape hatch.
//!
//! `panic-reach` then runs a multi-source BFS from every **unwaived**
//! panic site backwards over the call graph, and flags public functions
//! in reach-enforced tiers (Sim/Lib) at distance ≥ 1. Distance-0 sites
//! are excluded on purpose: the function containing the panic already
//! gets a `panic-path` diagnostic, and repeating it as reachability
//! would be noise. The BFS records a parent pointer per node, so every
//! diagnostic renders the *shortest witness call path* down to the
//! concrete panic site. All iteration orders are fixed (node ids follow
//! file/source order, adjacency lists are sorted), so diagnostics are
//! byte-stable across runs — the same property the simulator itself is
//! held to.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{CallKind, FileFacts};
use crate::rules::{tier_of, LocalOutcome, Rule, Violation};

/// One flagged (or waived) reachability finding, for the JSON artifact.
#[derive(Debug, Clone)]
pub struct ReachEntry {
    /// Qualified function name (`World::step`).
    pub function: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based `fn` declaration line.
    pub line: usize,
    /// Rendered shortest witness path down to the panic site.
    pub witness: String,
    /// Suppressed by an `allow(panic-reach)` waiver.
    pub waived: bool,
}

/// Call-graph shape and reachability results, for the JSON artifact.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Non-test function items in the graph.
    pub functions: usize,
    /// Distinct resolved call edges.
    pub edges: usize,
    /// Nodes declared with a bare `pub`.
    pub public_functions: usize,
    /// Functions containing at least one unwaived panic site.
    pub panic_sources: usize,
    /// Flagged public functions (including waived ones, for transparency).
    pub flagged: Vec<ReachEntry>,
}

/// The graph phase's output: `panic-reach` violations (plus unused
/// reach-waiver diagnostics) and the artifact stats.
#[derive(Debug, Clone, Default)]
pub struct GraphAnalysis {
    /// Violations to merge into the per-file results.
    pub violations: Vec<Violation>,
    /// Shape + reachability summary for `SIMLINT.json`.
    pub stats: GraphStats,
}

struct Node {
    file: usize,
    name: String,
    qualifier: Option<String>,
    module_last: String,
    file_stem: String,
    crate_norm: String,
    line: usize,
    is_pub: bool,
    reach_enforced: bool,
}

/// The crate a workspace-relative path belongs to, hyphens normalized.
fn crate_norm(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    let name = if parts.first() == Some(&"crates") && parts.len() >= 2 {
        parts[1]
    } else {
        "spider_repro"
    };
    name.replace('-', "_")
}

/// The file's stem (`contention` for `crates/geo/src/contention.rs`) —
/// usually the module name the file is mounted as.
fn file_stem(rel: &str) -> String {
    rel.rsplit('/')
        .next()
        .unwrap_or("")
        .trim_end_matches(".rs")
        .to_string()
}

/// How a panic site renders at the end of a witness path.
fn site_render(detail: &str) -> String {
    match detail {
        "unwrap" | "expect" => format!("{detail}()"),
        other => format!("{other}!"),
    }
}

/// Build the graph over `files` and run the reachability analysis.
/// `outcomes` must be parallel to `files` (it carries which panic sites
/// were waived locally, and the `panic-reach` waivers to resolve here).
pub fn analyze(files: &[FileFacts], outcomes: &[LocalOutcome]) -> GraphAnalysis {
    debug_assert_eq!(files.len(), outcomes.len());
    let mut nodes: Vec<Node> = Vec::new();
    // (file index, function index within file) -> node id.
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();

    for (fx, facts) in files.iter().enumerate() {
        let tier = tier_of(&facts.rel);
        if tier == crate::rules::Tier::Test {
            continue;
        }
        let cn = crate_norm(&facts.rel);
        let stem = file_stem(&facts.rel);
        for (ix, f) in facts.functions.iter().enumerate() {
            if f.test {
                continue;
            }
            node_of.insert((fx, ix), nodes.len());
            nodes.push(Node {
                file: fx,
                name: f.name.clone(),
                qualifier: f.qualifier.clone(),
                module_last: f.module.rsplit("::").next().unwrap_or("").to_string(),
                file_stem: stem.clone(),
                crate_norm: cn.clone(),
                line: f.line,
                is_pub: f.is_pub,
                reach_enforced: tier.reach_enforced(),
            });
        }
    }

    // Name index for resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (nx, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(nx);
    }

    // Resolve call sites to edges (deduplicated, deterministic order).
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (fx, facts) in files.iter().enumerate() {
        for call in &facts.calls {
            let Some(&caller) = node_of.get(&(fx, call.caller)) else {
                continue; // test function or test-tier file
            };
            let Some(last) = call.segs.last() else {
                continue;
            };
            let Some(cands) = by_name.get(last.as_str()) else {
                continue;
            };
            match call.kind {
                CallKind::Method => {
                    for &cx in cands {
                        if nodes[cx].qualifier.is_some() {
                            edges.insert((caller, cx));
                        }
                    }
                }
                CallKind::Path if call.segs.len() == 1 => {
                    // Bare call: free functions in the caller's crate.
                    for &cx in cands {
                        if nodes[cx].qualifier.is_none()
                            && nodes[cx].crate_norm == nodes[caller].crate_norm
                        {
                            edges.insert((caller, cx));
                        }
                    }
                }
                CallKind::Path => {
                    let q = &call.segs[call.segs.len() - 2];
                    let q = if q == "Self" {
                        match &nodes[caller].qualifier {
                            Some(s) => s.clone(),
                            None => continue,
                        }
                    } else {
                        q.clone()
                    };
                    let qn = q.replace('-', "_");
                    for &cx in cands {
                        let n = &nodes[cx];
                        if n.qualifier.as_deref() == Some(q.as_str())
                            || n.module_last == q
                            || n.file_stem == q
                            || n.crate_norm == qn
                        {
                            edges.insert((caller, cx));
                        }
                    }
                }
            }
        }
    }

    // Reverse adjacency (callee -> callers), sorted by construction.
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for &(a, b) in &edges {
        radj[b].push(a);
    }
    for list in &mut radj {
        list.sort_unstable();
        list.dedup();
    }

    // Panic sources: nodes containing an unwaived, non-test panic site in
    // a reach-enforced file. Remember the first site per node for the
    // witness tail.
    let mut source_site: BTreeMap<usize, (usize, String)> = BTreeMap::new();
    for (fx, facts) in files.iter().enumerate() {
        if !tier_of(&facts.rel).reach_enforced() {
            continue;
        }
        for (sx, site) in facts.sites.iter().enumerate() {
            if site.rule != Rule::PanicPath || site.test {
                continue;
            }
            if outcomes[fx].waived_panic_sites.contains(&sx) {
                continue;
            }
            let Some(func) = site.func else { continue };
            let Some(&nx) = node_of.get(&(fx, func)) else {
                continue;
            };
            source_site
                .entry(nx)
                .or_insert((site.line, site_render(&site.detail)));
        }
    }

    // Multi-source BFS toward callers; `hop[n]` points one step closer to
    // the panic. Seeds and neighbors are visited in sorted order, so ties
    // resolve deterministically.
    let mut dist: Vec<Option<u32>> = vec![None; nodes.len()];
    let mut hop: Vec<usize> = vec![usize::MAX; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &nx in source_site.keys() {
        dist[nx] = Some(0);
        queue.push_back(nx);
    }
    while let Some(nx) = queue.pop_front() {
        let d = match dist[nx] {
            Some(d) => d,
            None => continue,
        };
        for &caller in &radj[nx] {
            if dist[caller].is_none() {
                dist[caller] = Some(d + 1);
                hop[caller] = nx;
                queue.push_back(caller);
            }
        }
    }

    let qname = |n: &Node| match &n.qualifier {
        Some(q) => format!("{q}::{}", n.name),
        None => n.name.clone(),
    };
    let witness = |start: usize| -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut cur = start;
        loop {
            let n = &nodes[cur];
            parts.push(format!("{} ({}:{})", qname(n), files[n.file].rel, n.line));
            if dist[cur] == Some(0) {
                break;
            }
            let next = hop[cur];
            if next == usize::MAX {
                break; // unreachable by construction
            }
            cur = next;
        }
        let tail = match source_site.get(&cur) {
            Some((line, what)) => {
                format!(" -> {} at {}:{}", what, files[nodes[cur].file].rel, line)
            }
            None => String::new(),
        };
        format!("{}{}", parts.join(" -> "), tail)
    };

    let mut out = GraphAnalysis {
        stats: GraphStats {
            functions: nodes.len(),
            edges: edges.len(),
            public_functions: nodes.iter().filter(|n| n.is_pub).count(),
            panic_sources: source_site.len(),
            flagged: Vec::new(),
        },
        ..GraphAnalysis::default()
    };

    // Flag public functions at distance >= 1, honoring reach waivers on
    // the declaration line (trailing) or the line directly above.
    let mut waiver_used: Vec<Vec<bool>> = outcomes
        .iter()
        .map(|o| vec![false; o.reach_waivers.len()])
        .collect();
    for (nx, n) in nodes.iter().enumerate() {
        if !n.is_pub || !n.reach_enforced {
            continue;
        }
        let Some(d) = dist[nx] else { continue };
        if d < 1 {
            continue;
        }
        let waiver = outcomes[n.file]
            .reach_waivers
            .iter()
            .position(|w| w.line + 1 == n.line || (w.standalone && w.line + 2 == n.line));
        let path = witness(nx);
        if let Some(wx) = waiver {
            waiver_used[n.file][wx] = true;
            out.stats.flagged.push(ReachEntry {
                function: qname(n),
                file: files[n.file].rel.clone(),
                line: n.line,
                witness: path,
                waived: true,
            });
            continue;
        }
        out.stats.flagged.push(ReachEntry {
            function: qname(n),
            file: files[n.file].rel.clone(),
            line: n.line,
            witness: path.clone(),
            waived: false,
        });
        out.violations.push(Violation {
            file: files[n.file].rel.clone(),
            line: n.line,
            code: Rule::PanicReach.name().to_string(),
            message: format!(
                "pub fn `{}` can transitively reach an unwaived panic path: {} \
                 (fix the panic, or justify with `// simlint: allow(panic-reach) — <reason>`)",
                qname(n),
                path
            ),
        });
    }

    // Reach waivers that shielded nothing are stale, like any other
    // waiver.
    for (fx, outcome) in outcomes.iter().enumerate() {
        for (wx, w) in outcome.reach_waivers.iter().enumerate() {
            if !waiver_used[fx][wx] {
                out.violations.push(Violation {
                    file: files[fx].rel.clone(),
                    line: w.line + 1,
                    code: "waiver-unused".to_string(),
                    message: "waiver for `panic-reach` suppresses nothing (no reachable \
                              panic from the next `fn`); remove it"
                        .to_string(),
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::extract;
    use crate::rules::lint_local;

    fn analyze_srcs(srcs: &[(&str, &str)]) -> GraphAnalysis {
        let files: Vec<FileFacts> = srcs.iter().map(|(rel, src)| extract(rel, src)).collect();
        let outcomes: Vec<_> = files.iter().map(lint_local).collect();
        analyze(&files, &outcomes)
    }

    #[test]
    fn cross_file_reachability_with_witness() {
        let g = analyze_srcs(&[
            (
                "crates/spider-core/src/world.rs",
                "pub fn drive() { geo::rank::pick(0); }\n",
            ),
            (
                "crates/geo/src/rank.rs",
                "pub fn pick(i: usize) -> u8 { TABLE.get(i).copied().unwrap() }\n",
            ),
        ]);
        // Both pub fns are flagged: `pick` holds the site (distance 0 — a
        // panic-path violation, not panic-reach) and `drive` reaches it.
        let flagged: Vec<&ReachEntry> = g.stats.flagged.iter().filter(|e| !e.waived).collect();
        assert_eq!(flagged.len(), 1, "{:?}", g.stats.flagged);
        assert_eq!(flagged[0].function, "drive");
        assert!(
            flagged[0]
                .witness
                .contains("drive (crates/spider-core/src/world.rs:1)")
                && flagged[0]
                    .witness
                    .contains("pick (crates/geo/src/rank.rs:1)")
                && flagged[0]
                    .witness
                    .contains("unwrap() at crates/geo/src/rank.rs:1"),
            "{}",
            flagged[0].witness
        );
        assert_eq!(g.stats.panic_sources, 1);
        assert_eq!(g.violations.len(), 1);
    }

    #[test]
    fn method_calls_resolve_to_impl_methods() {
        let g = analyze_srcs(&[(
            "crates/spider-core/src/world.rs",
            "pub struct W;\n\
             impl W {\n\
                 pub fn step(&mut self) { self.advance(); }\n\
                 fn advance(&mut self) { panic!(\"boom\") }\n\
             }\n",
        )]);
        assert_eq!(g.violations.len(), 1, "{:?}", g.violations);
        assert!(g.violations[0].message.contains("W::step"));
        assert!(g.violations[0].message.contains("panic! at"));
    }

    #[test]
    fn bin_tier_panics_are_not_sources() {
        let g = analyze_srcs(&[
            (
                "crates/spider-core/src/world.rs",
                "pub fn run() { experiments_helper(); }\n",
            ),
            (
                "crates/experiments/src/main.rs",
                "pub fn experiments_helper() { x.unwrap(); }\n",
            ),
        ]);
        assert!(g.violations.is_empty(), "{:?}", g.violations);
        assert_eq!(g.stats.panic_sources, 0);
    }

    #[test]
    fn waived_panic_site_is_not_a_source() {
        let g = analyze_srcs(&[(
            "crates/spider-core/src/world.rs",
            "pub fn entry() { deep(None); }\n\
             fn deep(v: Option<u8>) -> u8 {\n\
                 // simlint: allow(panic-path) — invariant: callers pass Some\n\
                 v.unwrap()\n\
             }\n",
        )]);
        assert!(g.violations.is_empty(), "{:?}", g.violations);
    }

    #[test]
    fn shortest_path_is_chosen() {
        let g = analyze_srcs(&[(
            "crates/spider-core/src/world.rs",
            "pub fn entry() { long_a(); short(); }\n\
             fn long_a() { long_b(); }\n\
             fn long_b() { short(); }\n\
             fn short() { panic!(\"x\") }\n",
        )]);
        let v: Vec<&Violation> = g
            .violations
            .iter()
            .filter(|v| v.code == "panic-reach")
            .collect();
        assert_eq!(v.len(), 1);
        // entry -> short -> panic, not entry -> long_a -> long_b -> short.
        assert!(
            v[0].message.contains("entry")
                && v[0].message.contains("short")
                && !v[0].message.contains("long_a"),
            "{}",
            v[0].message
        );
    }
}
