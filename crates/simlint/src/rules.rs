//! The rule engine: tiered policy, per-line checks, and waiver handling.
//!
//! # Policy tiers
//!
//! | tier | crates | rules enforced |
//! |------|--------|----------------|
//! | **sim** | `sim-engine`, `wifi-mac`, `dhcp`, `tcp-lite`, `mobility`, `geo`, `workload`, `analytical`, `spider-core` | `unordered-map`, `wall-clock`, `panic-path` |
//! | **lib** | `campaign`, `simlint`, `bench` (harness/baseline), the root `src/` facade | `panic-path` |
//! | **bin** | `experiments`, `bench` suite bodies (`suites.rs`, `src/bin/`) | *(none)* |
//!
//! Two files get per-file overrides: `crates/fleet/src/proto.rs` and
//! `crates/bench/src/stats.rs` are **sim**-tier — the wire codec and the
//! bootstrap statistics both promise bit-identical results across
//! machines, so wall clocks and unordered maps are banned there even
//! though their crates are not simulation crates.
//!
//! Test code is exempt everywhere: files under `tests/`, `benches/`, or
//! `examples/` directories, and `#[cfg(test)]` items inside `src/` files.
//!
//! # Rules
//!
//! * `unordered-map` — `HashMap`, `HashSet`, `hash_map`, `hash_set`, or
//!   `RandomState`: iteration order is randomized per process, which breaks
//!   the byte-identical-`RunRecord` contract the campaign cache depends on.
//!   Use `BTreeMap`/`BTreeSet`.
//! * `wall-clock` — `SystemTime`, `std::time`, or `Instant::now`: real time
//!   must never leak into simulation state; use `sim_engine::time`.
//! * `panic-path` — `unwrap(`, `expect(`, `panic!`, `todo!`,
//!   `unimplemented!` outside test code: library crates surface typed
//!   errors instead of crashing the whole campaign. (`assert!`,
//!   `debug_assert!`, and `unreachable!` are *not* flagged: they state
//!   invariants, and a deterministic simulation wants violated invariants
//!   loud.)
//!
//! # Waivers
//!
//! A rule can be waived for one line with a comment, either trailing the
//! line or on the line directly above it:
//!
//! ```text
//! // simlint: allow(unordered-map) — membership-only set, never iterated
//! ```
//!
//! The reason is mandatory (`waiver-missing-reason` otherwise), the rule
//! name must exist (`waiver-unknown-rule`), and a waiver that suppresses
//! nothing is itself an error (`waiver-unused`) so stale exceptions cannot
//! linger.

use crate::lexer::{find_word, LexedFile};

/// Every deniable rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet`/`RandomState` in simulation state.
    UnorderedMap,
    /// `SystemTime` / `std::time` / `Instant::now` in simulation code.
    WallClock,
    /// `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in library
    /// code.
    PanicPath,
}

impl Rule {
    /// The rule's diagnostic name (what goes inside `error[...]` and
    /// `allow(...)`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedMap => "unordered-map",
            Rule::WallClock => "wall-clock",
            Rule::PanicPath => "panic-path",
        }
    }

    /// Parse a rule name as written in a waiver.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unordered-map" => Some(Rule::UnorderedMap),
            "wall-clock" => Some(Rule::WallClock),
            "panic-path" => Some(Rule::PanicPath),
            _ => None,
        }
    }
}

/// Which rule set applies to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Simulation crates: full determinism + panic policy.
    Sim,
    /// Non-simulation library crates: panic policy only.
    Lib,
    /// Binary / harness crates: nothing enforced.
    Bin,
    /// Test code: exempt.
    Test,
}

impl Tier {
    /// The rules enforced at this tier.
    pub fn rules(self) -> &'static [Rule] {
        match self {
            Tier::Sim => &[Rule::UnorderedMap, Rule::WallClock, Rule::PanicPath],
            Tier::Lib => &[Rule::PanicPath],
            Tier::Bin | Tier::Test => &[],
        }
    }
}

/// Crates whose state feeds the deterministic simulation.
pub const SIM_CRATES: &[&str] = &[
    "sim-engine",
    "wifi-mac",
    "dhcp",
    "tcp-lite",
    "mobility",
    "geo",
    "workload",
    "analytical",
    "spider-core",
];

/// Classify a workspace-relative path (forward slashes) into a tier.
pub fn tier_of(rel_path: &str) -> Tier {
    let parts: Vec<&str> = rel_path.split('/').collect();
    // Anything under a tests/, benches/, or examples/ directory is test
    // code, wherever it lives.
    if parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples")
    {
        return Tier::Test;
    }
    if parts.first() == Some(&"crates") && parts.len() >= 2 {
        let krate = parts[1];
        if SIM_CRATES.contains(&krate) {
            return Tier::Sim;
        }
        if krate == "experiments" {
            return Tier::Bin;
        }
        if krate == "fleet" && parts.last() == Some(&"proto.rs") {
            // The framed wire codec runs on both ends of the worker
            // protocol, so it gets the full determinism tier; the
            // scheduler/worker around it are process management (OS
            // children, wall-clock deadlines) and stay at Lib.
            return Tier::Sim;
        }
        if krate == "bench" {
            // The bootstrap statistics behind the regression gate promise
            // bit-identical verdicts under a fixed seed, so they answer to
            // the full determinism tier. The suite bodies and the gate CLI
            // are harness code (wall-clock timing, unwrap-on-setup is
            // fine); the timer/baseline plumbing stays at Lib.
            if parts.last() == Some(&"stats.rs") {
                return Tier::Sim;
            }
            if parts.last() == Some(&"suites.rs") || parts.contains(&"bin") {
                return Tier::Bin;
            }
        }
        return Tier::Lib;
    }
    // The root facade crate (src/lib.rs).
    Tier::Lib
}

/// One diagnostic: either a rule violation or a bad waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Diagnostic code (`unordered-map`, …, or a `waiver-*` code).
    pub code: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// `file:line: error[code]: message` — the rustc-style line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: error[{}]: {}",
            self.file, self.line, self.code, self.message
        )
    }
}

/// A parsed `// simlint: allow(rule) — reason` comment.
#[derive(Debug, Clone)]
struct Waiver {
    /// 0-based line the comment starts on.
    line: usize,
    rule: Rule,
    used: bool,
    /// True when the waiver's line has no code of its own, so it shields
    /// the next line instead.
    standalone: bool,
}

const WAIVER_MARKER: &str = "simlint:";

/// Scan one comment for a waiver. Returns `Ok(None)` when the comment is
/// not a waiver at all, `Err(violation-parts)` for malformed waivers.
fn parse_waiver(comment: &str) -> Result<Option<(Rule, String)>, (String, String)> {
    // A waiver must *begin* the comment. This deliberately excludes doc
    // comments (their text starts with the extra `/` or `!`), so prose that
    // merely quotes the syntax is never parsed as a waiver.
    let trimmed = comment.trim_start();
    let Some(rest) = trimmed.strip_prefix(WAIVER_MARKER) else {
        return Ok(None);
    };
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("allow") else {
        return Err((
            "waiver-unknown-rule".to_string(),
            format!(
                "malformed simlint comment (expected `simlint: allow(<rule>) — <reason>`): `{}`",
                comment.trim()
            ),
        ));
    };
    let args = args.trim_start();
    let Some(inner_start) = args.strip_prefix('(') else {
        return Err((
            "waiver-unknown-rule".to_string(),
            "waiver missing `(<rule>)`".to_string(),
        ));
    };
    let Some(close) = inner_start.find(')') else {
        return Err((
            "waiver-unknown-rule".to_string(),
            "waiver missing closing `)`".to_string(),
        ));
    };
    let rule_name = inner_start[..close].trim();
    let Some(rule) = Rule::from_name(rule_name) else {
        return Err((
            "waiver-unknown-rule".to_string(),
            format!("unknown rule `{rule_name}` in waiver"),
        ));
    };
    // Everything after the `)` — minus separator punctuation — is the
    // mandatory reason.
    let reason = inner_start[close + 1..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':', ','])
        .trim();
    if reason.is_empty() {
        return Err((
            "waiver-missing-reason".to_string(),
            format!(
                "waiver for `{}` has no reason; every exception must say why",
                rule.name()
            ),
        ));
    }
    Ok(Some((rule, reason.to_string())))
}

/// Check one line of blanked code against `rule`. Returns the message of
/// the first hit, if any.
fn check_line(rule: Rule, code: &str) -> Option<String> {
    match rule {
        Rule::UnorderedMap => {
            for word in ["HashMap", "HashSet", "RandomState", "hash_map", "hash_set"] {
                if find_word(code, word).is_some() {
                    return Some(format!(
                        "`{word}` has process-randomized iteration order; use BTreeMap/BTreeSet \
                         (or justify with `// simlint: allow(unordered-map) — <reason>`)"
                    ));
                }
            }
            None
        }
        Rule::WallClock => {
            if find_word(code, "SystemTime").is_some() {
                return Some(
                    "`SystemTime` reads the wall clock; simulation code must use \
                     `sim_engine::time`"
                        .to_string(),
                );
            }
            if let Some(pos) = find_word(code, "std") {
                let after = code[pos + 3..].trim_start();
                if let Some(t) = after.strip_prefix("::") {
                    if t.trim_start().starts_with("time") {
                        return Some(
                            "`std::time` is wall-clock time; simulation code must use \
                             `sim_engine::time`"
                                .to_string(),
                        );
                    }
                }
            }
            if let Some(pos) = find_word(code, "Instant") {
                let after = code[pos + "Instant".len()..].trim_start();
                if let Some(t) = after.strip_prefix("::") {
                    if t.trim_start().starts_with("now") {
                        return Some(
                            "`Instant::now()` reads the wall clock; virtual time comes from \
                             the event queue"
                                .to_string(),
                        );
                    }
                }
            }
            None
        }
        Rule::PanicPath => {
            for word in ["unwrap", "expect"] {
                if let Some(pos) = find_word(code, word) {
                    let after = code[pos + word.len()..].trim_start();
                    if after.starts_with('(') {
                        return Some(format!(
                            "`{word}()` panics on the error path; return a typed error \
                             (or justify with `// simlint: allow(panic-path) — <reason>`)"
                        ));
                    }
                }
            }
            for mac in ["panic", "todo", "unimplemented"] {
                if let Some(pos) = find_word(code, mac) {
                    let after = code[pos + mac.len()..].trim_start();
                    if after.starts_with('!') {
                        return Some(format!(
                            "`{mac}!` aborts the campaign; return a typed error instead"
                        ));
                    }
                }
            }
            None
        }
    }
}

/// Lint one lexed file.
///
/// `rel_path` is the workspace-relative path (used for tier selection and
/// diagnostics); `test_scoped` marks lines inside `#[cfg(test)]` items.
pub fn lint_file(rel_path: &str, file: &LexedFile, test_scoped: &[bool]) -> Vec<Violation> {
    let tier = tier_of(rel_path);
    let mut violations: Vec<Violation> = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();

    // Pass 1: collect (and validate) waivers from every comment. Waiver
    // syntax is validated even in exempt tiers/test code — a malformed
    // waiver anywhere is noise worth rejecting.
    for (ln, line) in file.lines.iter().enumerate() {
        for comment in &line.comments {
            match parse_waiver(comment) {
                Ok(None) => {}
                Ok(Some((rule, _reason))) => {
                    let standalone = line.code.trim().is_empty();
                    waivers.push(Waiver {
                        line: ln,
                        rule,
                        used: false,
                        standalone,
                    });
                }
                Err((code, message)) => violations.push(Violation {
                    file: rel_path.to_string(),
                    line: ln + 1,
                    code,
                    message,
                }),
            }
        }
    }

    // Pass 2: run the tier's rules over non-test lines.
    for (ln, line) in file.lines.iter().enumerate() {
        if test_scoped.get(ln).copied().unwrap_or(false) {
            continue;
        }
        for &rule in tier.rules() {
            let Some(message) = check_line(rule, &line.code) else {
                continue;
            };
            // A waiver covers the hit when it names the rule and sits on
            // the same line (trailing) or alone on the line above.
            let waived = waivers
                .iter_mut()
                .find(|w| w.rule == rule && (w.line == ln || (w.standalone && w.line + 1 == ln)));
            match waived {
                Some(w) => w.used = true,
                None => violations.push(Violation {
                    file: rel_path.to_string(),
                    line: ln + 1,
                    code: rule.name().to_string(),
                    message,
                }),
            }
        }
    }

    // Pass 3: waivers that shielded nothing are stale — reject them so the
    // exception list can only shrink. (Waivers inside test code are
    // pointless but harmless; still flagged, to keep them out entirely.)
    for w in &waivers {
        if !w.used {
            violations.push(Violation {
                file: rel_path.to_string(),
                line: w.line + 1,
                code: "waiver-unused".to_string(),
                message: format!(
                    "waiver for `{}` suppresses nothing on its line{}; remove it",
                    w.rule.name(),
                    if w.standalone { " or the next" } else { "" }
                ),
            });
        }
    }

    violations.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.code.cmp(&b.code)));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_scoped_lines};

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let scoped = test_scoped_lines(&lexed);
        lint_file(path, &lexed, &scoped)
    }

    const SIM: &str = "crates/spider-core/src/world.rs";

    #[test]
    fn hashmap_in_sim_crate_denied() {
        let v = run(SIM, "use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, "unordered-map");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn hashmap_in_comment_or_string_ignored() {
        let v = run(SIM, "// HashMap order notes\nlet s = \"HashMap\";\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_denied_in_lib_but_not_bin() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(run("crates/campaign/src/lib.rs", src).len(), 1);
        assert!(run("crates/experiments/src/main.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_and_expect_err_not_flagged() {
        let v = run(
            SIM,
            "let a = x.unwrap_or(0); let b = y.unwrap_or_default();\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_module_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(run(SIM, src).is_empty());
    }

    #[test]
    fn trailing_waiver_suppresses() {
        let src = "use std::collections::HashMap; // simlint: allow(unordered-map) — docs only\n";
        assert!(run(SIM, src).is_empty());
    }

    #[test]
    fn standalone_waiver_covers_next_line() {
        let src = "// simlint: allow(panic-path) — invariant: queue starts non-empty\nlet x = q.pop().unwrap();\n";
        assert!(run("crates/campaign/src/lib.rs", src).is_empty());
    }

    #[test]
    fn waiver_without_reason_rejected() {
        let src = "use std::collections::HashMap; // simlint: allow(unordered-map)\n";
        let v = run(SIM, src);
        assert!(v.iter().any(|x| x.code == "waiver-missing-reason"), "{v:?}");
        // And the underlying violation still stands: a reasonless waiver
        // waives nothing.
        assert!(v.iter().any(|x| x.code == "unordered-map"), "{v:?}");
    }

    #[test]
    fn unknown_rule_in_waiver_rejected() {
        let v = run(SIM, "// simlint: allow(no-such-rule) — because\n");
        assert!(v.iter().any(|x| x.code == "waiver-unknown-rule"), "{v:?}");
    }

    #[test]
    fn unused_waiver_rejected() {
        let v = run(
            SIM,
            "// simlint: allow(unordered-map) — stale excuse\nlet x = 1;\n",
        );
        assert!(v.iter().any(|x| x.code == "waiver-unused"), "{v:?}");
    }

    #[test]
    fn wall_clock_denied_in_sim() {
        let v = run(SIM, "let t = std::time::Instant::now();\n");
        assert!(v.iter().any(|x| x.code == "wall-clock"), "{v:?}");
        // sim_engine's virtual Instant is fine.
        let ok = run(SIM, "let t: sim_engine::time::Instant = queue.now();\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn tests_dirs_fully_exempt() {
        let src = "use std::collections::HashMap;\nfn f() { x.unwrap(); }\n";
        assert!(run("crates/spider-core/tests/determinism.rs", src).is_empty());
        assert!(run("tests/full_system.rs", src).is_empty());
    }

    #[test]
    fn fleet_protocol_is_sim_tier_rest_is_lib() {
        assert_eq!(tier_of("crates/fleet/src/proto.rs"), Tier::Sim);
        assert_eq!(tier_of("crates/fleet/src/scheduler.rs"), Tier::Lib);
        assert_eq!(tier_of("crates/fleet/src/worker.rs"), Tier::Lib);
        assert_eq!(tier_of("crates/fleet/tests/scheduler_e2e.rs"), Tier::Test);
        // The codec must not read wall clocks; the scheduler may (its
        // deadlines are real time), but still answers for panic paths.
        let clock = "let t = std::time::Instant::now();\n";
        assert!(!run("crates/fleet/src/proto.rs", clock).is_empty());
        assert!(run("crates/fleet/src/scheduler.rs", clock).is_empty());
        let unwrap = "fn f() { x.unwrap(); }\n";
        assert!(!run("crates/fleet/src/scheduler.rs", unwrap).is_empty());
    }

    #[test]
    fn bench_stats_is_sim_tier_suites_and_bin_are_bin_tier() {
        assert_eq!(tier_of("crates/bench/src/stats.rs"), Tier::Sim);
        assert_eq!(tier_of("crates/bench/src/suites.rs"), Tier::Bin);
        assert_eq!(tier_of("crates/bench/src/bin/bench.rs"), Tier::Bin);
        assert_eq!(tier_of("crates/bench/src/timer.rs"), Tier::Lib);
        assert_eq!(tier_of("crates/bench/src/baseline.rs"), Tier::Lib);
        assert_eq!(tier_of("crates/bench/benches/des_core.rs"), Tier::Test);
        // The statistics must be deterministic: no wall clock, no
        // unordered maps; the harness may read real time (it measures
        // it) but still answers for panic paths.
        let clock = "let t = std::time::Instant::now();\n";
        assert!(!run("crates/bench/src/stats.rs", clock).is_empty());
        assert!(run("crates/bench/src/timer.rs", clock).is_empty());
        let unwrap = "fn f() { x.unwrap(); }\n";
        assert!(!run("crates/bench/src/timer.rs", unwrap).is_empty());
        assert!(run("crates/bench/src/suites.rs", unwrap).is_empty());
    }

    #[test]
    fn geo_is_sim_tier() {
        assert_eq!(tier_of("crates/geo/src/grid.rs"), Tier::Sim);
        assert_eq!(tier_of("crates/geo/src/lib.rs"), Tier::Sim);
        // Spatial queries feed simulation state, so the full determinism
        // tier applies: no hash maps, no wall clocks, no panic paths.
        let hash = "use std::collections::HashMap;\n";
        assert!(!run("crates/geo/src/grid.rs", hash).is_empty());
        let unwrap = "fn f() { x.unwrap(); }\n";
        assert!(!run("crates/geo/src/rank.rs", unwrap).is_empty());
    }

    #[test]
    fn render_is_rustc_style() {
        let v = run(SIM, "use std::collections::HashSet;\n");
        assert_eq!(
            v[0].render(),
            "crates/spider-core/src/world.rs:1: error[unordered-map]: \
             `HashSet` has process-randomized iteration order; use BTreeMap/BTreeSet \
             (or justify with `// simlint: allow(unordered-map) — <reason>`)"
        );
    }
}
