//! The rule engine: tiered policy, fact-based checks, and waiver handling.
//!
//! # Policy tiers
//!
//! | tier | crates | rules enforced |
//! |------|--------|----------------|
//! | **sim** | `sim-engine`, `wifi-mac`, `dhcp`, `tcp-lite`, `mobility`, `geo`, `workload`, `analytical`, `spider-core` | all six line rules + `panic-reach` |
//! | **lib** | `campaign`, `simlint`, `fleet` (except `proto.rs`), `bench` (harness/baseline), the root `src/` facade | `panic-path`, `panic-reach` |
//! | **bin** | `experiments`, `bench` suite bodies (`suites.rs`, `src/bin/`) | *(none)* |
//!
//! Two files get per-file overrides: `crates/fleet/src/proto.rs` and
//! `crates/bench/src/stats.rs` are **sim**-tier — the wire codec and the
//! bootstrap statistics both promise bit-identical results across
//! machines. Test code is exempt everywhere: files under `tests/`,
//! `benches/`, or `examples/` directories, and `#[cfg(test)]` items.
//!
//! The tier table is **default-deny**: a directory under `crates/` with
//! no explicit entry here is itself a violation (`unclassified-crate`),
//! so a future crate cannot silently skip enforcement.
//!
//! # Rules
//!
//! * `unordered-map` — `HashMap`/`HashSet`/`RandomState`: iteration order
//!   is randomized per process; use `BTreeMap`/`BTreeSet`.
//! * `wall-clock` — `SystemTime`, `std::time`, `Instant::now()`: real
//!   time must never leak into simulation state; use `sim_engine::time`.
//! * `panic-path` — `unwrap()`/`expect()` *calls*, `panic!`, `todo!`,
//!   `unimplemented!` outside test code: library crates surface typed
//!   errors instead of crashing the whole campaign. (`assert!`,
//!   `debug_assert!`, and `unreachable!` are *not* flagged: they state
//!   invariants, and a deterministic simulation wants violated
//!   invariants loud.)
//! * `float-order` — `partial_cmp` *calls* (including inside `sort_by`
//!   comparators): NaN makes `partial_cmp` return `None`, and every
//!   recovery (`unwrap_or(Equal)`) yields a non-total order whose sort
//!   result depends on the input permutation. Use `total_cmp`.
//! * `env-read` — `std::env::var`/`args`/…, `env!`, `option_env!`:
//!   cross-process byte-identity means results cannot depend on the
//!   environment block.
//! * `ambient-rng` — `thread_rng`, `from_entropy`, `OsRng`, `getrandom`,
//!   `std::process::id()`: every random draw must flow from an
//!   explicitly seeded/forked `sim_engine::rng::Rng`; entropy-seeded
//!   construction and per-process identity are nondeterminism by
//!   definition.
//! * `panic-reach` — a `pub` function in a sim/lib file whose call graph
//!   transitively reaches an **unwaived** panic site (computed by
//!   [`crate::graph`]; the diagnostic renders the shortest witness call
//!   path). Fires only for paths of length ≥ 1 — the direct site itself
//!   is already a `panic-path` diagnostic.
//!
//! # Waivers
//!
//! A rule can be waived for one line with a comment, either trailing the
//! line or alone on the line directly above it (for `panic-reach`, the
//! line is the `fn` declaration line):
//!
//! ```text
//! // simlint: allow(unordered-map) — membership-only set, never iterated
//! ```
//!
//! The reason is mandatory (`waiver-missing-reason` otherwise), the rule
//! name must exist (`waiver-unknown-rule`), and a waiver that suppresses
//! nothing is itself an error (`waiver-unused`) so stale exceptions
//! cannot linger — including waivers orphaned by a rule engine that got
//! more precise.

use crate::lexer::LexedFile;
use crate::parse::{extract_lexed, FileFacts, WaiverFact};

/// Every deniable rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet`/`RandomState` in simulation state.
    UnorderedMap,
    /// `SystemTime` / `std::time` / `Instant::now` in simulation code.
    WallClock,
    /// `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in library
    /// code.
    PanicPath,
    /// `partial_cmp` calls in simulation code (NaN ⇒ non-total order).
    FloatOrder,
    /// Ambient environment reads in simulation code.
    EnvRead,
    /// Entropy-seeded randomness / per-process identity in simulation
    /// code.
    AmbientRng,
    /// A public function that can transitively reach an unwaived panic
    /// site (graph-level; see [`crate::graph`]).
    PanicReach,
}

impl Rule {
    /// The rule's diagnostic name (what goes inside `error[...]` and
    /// `allow(...)`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedMap => "unordered-map",
            Rule::WallClock => "wall-clock",
            Rule::PanicPath => "panic-path",
            Rule::FloatOrder => "float-order",
            Rule::EnvRead => "env-read",
            Rule::AmbientRng => "ambient-rng",
            Rule::PanicReach => "panic-reach",
        }
    }

    /// Parse a rule name as written in a waiver.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unordered-map" => Some(Rule::UnorderedMap),
            "wall-clock" => Some(Rule::WallClock),
            "panic-path" => Some(Rule::PanicPath),
            "float-order" => Some(Rule::FloatOrder),
            "env-read" => Some(Rule::EnvRead),
            "ambient-rng" => Some(Rule::AmbientRng),
            "panic-reach" => Some(Rule::PanicReach),
            _ => None,
        }
    }
}

/// A fingerprint of the rule engine, baked into the incremental cache:
/// bump [`RULES_REVISION`] whenever parsing or rule semantics change so
/// stale cached facts can never survive a tool upgrade.
pub const RULES_REVISION: u32 = 2;

/// Which rule set applies to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Simulation crates: full determinism + panic policy.
    Sim,
    /// Non-simulation library crates: panic policy only.
    Lib,
    /// Binary / harness crates: nothing enforced.
    Bin,
    /// Test code: exempt.
    Test,
}

impl Tier {
    /// The line-level rules enforced at this tier (`panic-reach` is
    /// enforced at the graph level for Sim and Lib, see
    /// [`Tier::reach_enforced`]).
    pub fn rules(self) -> &'static [Rule] {
        match self {
            Tier::Sim => &[
                Rule::UnorderedMap,
                Rule::WallClock,
                Rule::PanicPath,
                Rule::FloatOrder,
                Rule::EnvRead,
                Rule::AmbientRng,
            ],
            Tier::Lib => &[Rule::PanicPath],
            Tier::Bin | Tier::Test => &[],
        }
    }

    /// Is `panic-reach` enforced for public functions in this tier?
    pub fn reach_enforced(self) -> bool {
        matches!(self, Tier::Sim | Tier::Lib)
    }
}

/// Crates whose state feeds the deterministic simulation.
pub const SIM_CRATES: &[&str] = &[
    "sim-engine",
    "wifi-mac",
    "dhcp",
    "tcp-lite",
    "mobility",
    "geo",
    "workload",
    "analytical",
    "spider-core",
];

/// Non-sim crates with an explicit tier. The union of this list and
/// [`SIM_CRATES`] is the complete allow-list: any other directory under
/// `crates/` is an `unclassified-crate` violation.
pub const OTHER_CRATES: &[&str] = &["bench", "campaign", "experiments", "fleet", "simlint"];

/// Is `name` a crate the tier table knows about?
pub fn known_crate(name: &str) -> bool {
    SIM_CRATES.contains(&name) || OTHER_CRATES.contains(&name)
}

/// Classify a workspace-relative path (forward slashes) into a tier.
/// Unknown crates fall back to `Lib` (the safe default: panic policy
/// still applies) — but the walker reports them as `unclassified-crate`
/// so the fallback can never be load-bearing for long.
pub fn tier_of(rel_path: &str) -> Tier {
    let parts: Vec<&str> = rel_path.split('/').collect();
    // Anything under a tests/, benches/, or examples/ directory is test
    // code, wherever it lives.
    if parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples")
    {
        return Tier::Test;
    }
    if parts.first() == Some(&"crates") && parts.len() >= 2 {
        let krate = parts[1];
        if SIM_CRATES.contains(&krate) {
            return Tier::Sim;
        }
        if krate == "experiments" {
            return Tier::Bin;
        }
        if krate == "fleet" && parts.last() == Some(&"proto.rs") {
            // The framed wire codec runs on both ends of the worker
            // protocol, so it gets the full determinism tier; the
            // scheduler/worker around it are process management (OS
            // children, wall-clock deadlines) and stay at Lib.
            return Tier::Sim;
        }
        if krate == "bench" {
            // The bootstrap statistics behind the regression gate promise
            // bit-identical verdicts under a fixed seed, so they answer to
            // the full determinism tier. The suite bodies and the gate CLI
            // are harness code (wall-clock timing, unwrap-on-setup is
            // fine); the timer/baseline plumbing stays at Lib.
            if parts.last() == Some(&"stats.rs") {
                return Tier::Sim;
            }
            if parts.last() == Some(&"suites.rs") || parts.contains(&"bin") {
                return Tier::Bin;
            }
        }
        return Tier::Lib;
    }
    // The root facade crate (src/lib.rs).
    Tier::Lib
}

/// One diagnostic: either a rule violation or a bad waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Diagnostic code (`unordered-map`, …, or a `waiver-*` code).
    pub code: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// `file:line: error[code]: message` — the rustc-style line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: error[{}]: {}",
            self.file, self.line, self.code, self.message
        )
    }
}

const WAIVER_MARKER: &str = "simlint:";

/// Scan one comment for a waiver. Returns `Ok(None)` when the comment is
/// not a waiver at all, `Err(violation-parts)` for malformed waivers.
pub(crate) fn parse_waiver(comment: &str) -> Result<Option<(Rule, String)>, (String, String)> {
    // A waiver must *begin* the comment. This deliberately excludes doc
    // comments (their text starts with the extra `/` or `!`), so prose that
    // merely quotes the syntax is never parsed as a waiver.
    let trimmed = comment.trim_start();
    let Some(rest) = trimmed.strip_prefix(WAIVER_MARKER) else {
        return Ok(None);
    };
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("allow") else {
        return Err((
            "waiver-unknown-rule".to_string(),
            format!(
                "malformed simlint comment (expected `simlint: allow(<rule>) — <reason>`): `{}`",
                comment.trim()
            ),
        ));
    };
    let args = args.trim_start();
    let Some(inner_start) = args.strip_prefix('(') else {
        return Err((
            "waiver-unknown-rule".to_string(),
            "waiver missing `(<rule>)`".to_string(),
        ));
    };
    let Some(close) = inner_start.find(')') else {
        return Err((
            "waiver-unknown-rule".to_string(),
            "waiver missing closing `)`".to_string(),
        ));
    };
    let rule_name = inner_start[..close].trim();
    let Some(rule) = Rule::from_name(rule_name) else {
        return Err((
            "waiver-unknown-rule".to_string(),
            format!("unknown rule `{rule_name}` in waiver"),
        ));
    };
    // Everything after the `)` — minus separator punctuation — is the
    // mandatory reason.
    let reason = inner_start[close + 1..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':', ','])
        .trim();
    if reason.is_empty() {
        return Err((
            "waiver-missing-reason".to_string(),
            format!(
                "waiver for `{}` has no reason; every exception must say why",
                rule.name()
            ),
        ));
    }
    Ok(Some((rule, reason.to_string())))
}

/// The diagnostic message for a matched site.
fn site_message(rule: Rule, detail: &str) -> String {
    match rule {
        Rule::UnorderedMap => format!(
            "`{detail}` has process-randomized iteration order; use BTreeMap/BTreeSet \
             (or justify with `// simlint: allow(unordered-map) — <reason>`)"
        ),
        Rule::WallClock => match detail {
            "SystemTime" => "`SystemTime` reads the wall clock; simulation code must use \
                             `sim_engine::time`"
                .to_string(),
            "Instant::now" => "`Instant::now()` reads the wall clock; virtual time comes from \
                               the event queue"
                .to_string(),
            _ => "`std::time` is wall-clock time; simulation code must use `sim_engine::time`"
                .to_string(),
        },
        Rule::PanicPath => match detail {
            "unwrap" | "expect" => format!(
                "`{detail}()` panics on the error path; return a typed error \
                 (or justify with `// simlint: allow(panic-path) — <reason>`)"
            ),
            _ => format!("`{detail}!` aborts the campaign; return a typed error instead"),
        },
        Rule::FloatOrder => "`partial_cmp` is not a total order (NaN compares as `None`), so \
                             float sorts depend on the input permutation; use `f64::total_cmp` \
                             (or justify with `// simlint: allow(float-order) — <reason>`)"
            .to_string(),
        Rule::EnvRead => format!(
            "`{detail}` reads the ambient environment; cross-process byte-identity forbids it \
             in simulation code (or justify with `// simlint: allow(env-read) — <reason>`)"
        ),
        Rule::AmbientRng => format!(
            "`{detail}` is ambient entropy/process identity; randomness must flow from an \
             explicitly seeded `sim_engine::rng::Rng` fork \
             (or justify with `// simlint: allow(ambient-rng) — <reason>`)"
        ),
        Rule::PanicReach => detail.to_string(),
    }
}

/// The per-file lint outcome, plus the cross-file facts the graph phase
/// needs (which panic sites were waived, and which `panic-reach` waivers
/// exist — their used/unused status is only decidable globally).
#[derive(Debug, Clone, Default)]
pub struct LocalOutcome {
    /// Local violations (everything except `panic-reach` and
    /// `waiver-unused` for `panic-reach` waivers).
    pub violations: Vec<Violation>,
    /// Indices into `facts.sites` of panic sites suppressed by a waiver —
    /// these do not count as panic sources in the reachability analysis.
    pub waived_panic_sites: Vec<usize>,
    /// `allow(panic-reach)` waivers, usage decided by [`crate::graph`].
    pub reach_waivers: Vec<WaiverFact>,
}

/// Run the tier's line rules over one file's facts.
pub fn lint_local(facts: &FileFacts) -> LocalOutcome {
    let tier = tier_of(&facts.rel);
    let mut out = LocalOutcome::default();

    // Malformed waivers are rejected in every tier — noise is noise.
    for d in &facts.waiver_diags {
        out.violations.push(Violation {
            file: facts.rel.clone(),
            line: d.line,
            code: d.code.clone(),
            message: d.message.clone(),
        });
    }

    let mut used = vec![false; facts.waivers.len()];
    let enforced = tier.rules();
    // One diagnostic per (rule, line): the parser may record several
    // pattern matches for one construct (`std::time::Instant::now()`).
    let mut seen: Vec<(Rule, usize)> = Vec::new();

    for (sx, site) in facts.sites.iter().enumerate() {
        if site.test || !enforced.contains(&site.rule) {
            continue;
        }
        // A waiver covers the hit when it names the rule and sits on the
        // same line (trailing) or alone on the line above. Waiver lines
        // are 0-based, site lines 1-based.
        let waiver = facts.waivers.iter().position(|w| {
            w.rule == site.rule
                && (w.line + 1 == site.line || (w.standalone && w.line + 2 == site.line))
        });
        if let Some(wx) = waiver {
            used[wx] = true;
            if site.rule == Rule::PanicPath {
                out.waived_panic_sites.push(sx);
            }
            continue;
        }
        if seen.contains(&(site.rule, site.line)) {
            continue;
        }
        seen.push((site.rule, site.line));
        out.violations.push(Violation {
            file: facts.rel.clone(),
            line: site.line,
            code: site.rule.name().to_string(),
            message: site_message(site.rule, &site.detail),
        });
    }

    // Waivers that shielded nothing are stale — reject them so the
    // exception list can only shrink. `panic-reach` waivers are deferred
    // to the graph phase, which alone knows whether they are used.
    for (wx, w) in facts.waivers.iter().enumerate() {
        if w.rule == Rule::PanicReach {
            out.reach_waivers.push(w.clone());
            continue;
        }
        if !used[wx] {
            out.violations.push(Violation {
                file: facts.rel.clone(),
                line: w.line + 1,
                code: "waiver-unused".to_string(),
                message: format!(
                    "waiver for `{}` suppresses nothing on its line{}; remove it",
                    w.rule.name(),
                    if w.standalone { " or the next" } else { "" }
                ),
            });
        }
    }

    out.violations
        .sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.code.cmp(&b.code)));
    out
}

/// Lint one lexed file, including single-file `panic-reach` analysis.
///
/// `rel_path` is the workspace-relative path (used for tier selection and
/// diagnostics); `test_scoped` marks lines inside `#[cfg(test)]` items.
pub fn lint_file(rel_path: &str, file: &LexedFile, test_scoped: &[bool]) -> Vec<Violation> {
    let facts = extract_lexed(rel_path, file, test_scoped);
    lint_facts(&[facts])
}

/// Lint a set of files' facts as one workspace: local rules per file,
/// then the cross-file call-graph analysis.
pub fn lint_facts(files: &[FileFacts]) -> Vec<Violation> {
    let outcomes: Vec<LocalOutcome> = files.iter().map(lint_local).collect();
    let graph = crate::graph::analyze(files, &outcomes);
    let mut violations: Vec<Violation> = outcomes.into_iter().flat_map(|o| o.violations).collect();
    violations.extend(graph.violations);
    violations.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.code.cmp(&b.code))
    });
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_scoped_lines};

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let scoped = test_scoped_lines(&lexed);
        lint_file(path, &lexed, &scoped)
    }

    const SIM: &str = "crates/spider-core/src/world.rs";

    #[test]
    fn hashmap_in_sim_crate_denied() {
        let v = run(SIM, "use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, "unordered-map");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn hashmap_in_comment_or_string_ignored() {
        let v = run(SIM, "// HashMap order notes\nlet s = \"HashMap\";\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_denied_in_lib_but_not_bin() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(run("crates/campaign/src/lib.rs", src).len(), 1);
        assert!(run("crates/experiments/src/main.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_and_expect_err_not_flagged() {
        let v = run(
            SIM,
            "let a = x.unwrap_or(0); let b = y.unwrap_or_default();\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fn_named_unwrap_is_a_definition_not_a_site() {
        // v1's lexer flagged `fn unwrap(` as a panic path; the parser
        // knows a definition from a call.
        let v = run(
            SIM,
            "impl Wrapper {\n    fn unwrap(self) -> u8 { self.0 }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_module_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(run(SIM, src).is_empty());
    }

    #[test]
    fn trailing_waiver_suppresses() {
        let src = "use std::collections::HashMap; // simlint: allow(unordered-map) — docs only\n";
        assert!(run(SIM, src).is_empty());
    }

    #[test]
    fn standalone_waiver_covers_next_line() {
        let src = "// simlint: allow(panic-path) — invariant: queue starts non-empty\nlet x = q.pop().unwrap();\n";
        assert!(run("crates/campaign/src/lib.rs", src).is_empty());
    }

    #[test]
    fn waiver_without_reason_rejected() {
        let src = "use std::collections::HashMap; // simlint: allow(unordered-map)\n";
        let v = run(SIM, src);
        assert!(v.iter().any(|x| x.code == "waiver-missing-reason"), "{v:?}");
        // And the underlying violation still stands: a reasonless waiver
        // waives nothing.
        assert!(v.iter().any(|x| x.code == "unordered-map"), "{v:?}");
    }

    #[test]
    fn unknown_rule_in_waiver_rejected() {
        let v = run(SIM, "// simlint: allow(no-such-rule) — because\n");
        assert!(v.iter().any(|x| x.code == "waiver-unknown-rule"), "{v:?}");
    }

    #[test]
    fn unused_waiver_rejected() {
        let v = run(
            SIM,
            "// simlint: allow(unordered-map) — stale excuse\nlet x = 1;\n",
        );
        assert!(v.iter().any(|x| x.code == "waiver-unused"), "{v:?}");
    }

    #[test]
    fn wall_clock_denied_in_sim() {
        let v = run(SIM, "let t = std::time::Instant::now();\n");
        assert!(v.iter().any(|x| x.code == "wall-clock"), "{v:?}");
        // One diagnostic, not one per matched pattern.
        assert_eq!(v.len(), 1, "{v:?}");
        // sim_engine's virtual Instant is fine.
        let ok = run(SIM, "let t: sim_engine::time::Instant = queue.now();\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn float_order_flags_partial_cmp_calls_not_impls() {
        let call = "fn f(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }\n";
        let v = run(SIM, call);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].code, "float-order");
        // A PartialOrd impl *defining* partial_cmp is not a call.
        let imp = "impl PartialOrd for S {\n\
                   \x20   fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) }\n\
                   }\n";
        assert!(run(SIM, imp).is_empty());
        // Lib tier does not enforce float-order.
        assert!(run("crates/campaign/src/lib.rs", call).is_empty());
    }

    #[test]
    fn env_read_flagged_in_sim_only() {
        let src = "fn f() -> bool { std::env::var(\"X\").is_ok() }\n";
        let v = run(SIM, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].code, "env-read");
        assert!(run("crates/campaign/src/lib.rs", src).is_empty());
        let mac = "fn f() -> &'static str { env!(\"CARGO_MANIFEST_DIR\") }\n";
        assert!(run(SIM, mac).iter().any(|x| x.code == "env-read"));
    }

    #[test]
    fn ambient_rng_flagged_in_sim() {
        for src in [
            "fn f() { let r = thread_rng(); }\n",
            "fn f() -> u32 { std::process::id() }\n",
            "fn f() { let r = Rng::from_entropy(); }\n",
        ] {
            let v = run(SIM, src);
            assert!(v.iter().any(|x| x.code == "ambient-rng"), "{src}: {v:?}");
        }
        // Seeded construction is the sanctioned path.
        assert!(run(SIM, "fn f() { let r = Rng::new(42); }\n").is_empty());
    }

    #[test]
    fn panic_reach_flags_public_transitive_panic_with_witness() {
        let src = "pub fn entry() { mid() }\n\
                   fn mid() { deep() }\n\
                   fn deep(v: Option<u8>) -> u8 { v.unwrap() }\n";
        let v = run(SIM, src);
        let reach: Vec<&Violation> = v.iter().filter(|x| x.code == "panic-reach").collect();
        assert_eq!(reach.len(), 1, "{v:?}");
        assert_eq!(reach[0].line, 1);
        assert!(
            reach[0].message.contains("entry") && reach[0].message.contains("deep"),
            "witness path missing: {}",
            reach[0].message
        );
        // The direct site is still its own panic-path diagnostic.
        assert!(v.iter().any(|x| x.code == "panic-path" && x.line == 3));
    }

    #[test]
    fn panic_reach_not_raised_for_direct_sites_or_waived_panics() {
        // Direct site: panic-path only (path length 0).
        let direct = "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        let v = run(SIM, direct);
        assert!(v.iter().all(|x| x.code != "panic-reach"), "{v:?}");
        // A waived panic site is not a reachability source.
        let waived = "pub fn entry() { deep(None) }\n\
                      fn deep(v: Option<u8>) -> u8 {\n\
                      \x20   // simlint: allow(panic-path) — invariant: callers pass Some\n\
                      \x20   v.unwrap()\n\
                      }\n";
        assert!(run(SIM, waived).is_empty(), "{:?}", run(SIM, waived));
    }

    #[test]
    fn panic_reach_waiver_on_the_fn_suppresses_and_unused_is_flagged() {
        let src = "// simlint: allow(panic-reach) — documented: entry() panics on empty input\n\
                   pub fn entry() { deep(None); }\n\
                   fn deep(v: Option<u8>) -> u8 { v.unwrap() }\n";
        let v = run(SIM, src);
        assert!(
            v.iter().all(|x| x.code != "panic-reach"),
            "waiver must suppress: {v:?}"
        );
        // The deep unwrap is still a local violation.
        assert!(v.iter().any(|x| x.code == "panic-path"));
        // A reach waiver that shields nothing is stale.
        let stale = "// simlint: allow(panic-reach) — nothing here panics\n\
                     pub fn quiet() {}\n";
        let v = run(SIM, stale);
        assert!(v.iter().any(|x| x.code == "waiver-unused"), "{v:?}");
    }

    #[test]
    fn tests_dirs_fully_exempt() {
        let src = "use std::collections::HashMap;\nfn f() { x.unwrap(); }\n";
        assert!(run("crates/spider-core/tests/determinism.rs", src).is_empty());
        assert!(run("tests/full_system.rs", src).is_empty());
    }

    #[test]
    fn fleet_protocol_is_sim_tier_rest_is_lib() {
        assert_eq!(tier_of("crates/fleet/src/proto.rs"), Tier::Sim);
        assert_eq!(tier_of("crates/fleet/src/scheduler.rs"), Tier::Lib);
        assert_eq!(tier_of("crates/fleet/src/worker.rs"), Tier::Lib);
        assert_eq!(tier_of("crates/fleet/tests/scheduler_e2e.rs"), Tier::Test);
        // The codec must not read wall clocks; the scheduler may (its
        // deadlines are real time), but still answers for panic paths.
        let clock = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(!run("crates/fleet/src/proto.rs", clock).is_empty());
        assert!(run("crates/fleet/src/scheduler.rs", clock).is_empty());
        let unwrap = "fn f() { x.unwrap(); }\n";
        assert!(!run("crates/fleet/src/scheduler.rs", unwrap).is_empty());
    }

    #[test]
    fn bench_stats_is_sim_tier_suites_and_bin_are_bin_tier() {
        assert_eq!(tier_of("crates/bench/src/stats.rs"), Tier::Sim);
        assert_eq!(tier_of("crates/bench/src/suites.rs"), Tier::Bin);
        assert_eq!(tier_of("crates/bench/src/bin/bench.rs"), Tier::Bin);
        assert_eq!(tier_of("crates/bench/src/timer.rs"), Tier::Lib);
        assert_eq!(tier_of("crates/bench/src/baseline.rs"), Tier::Lib);
        assert_eq!(tier_of("crates/bench/benches/des_core.rs"), Tier::Test);
        // The statistics must be deterministic: no wall clock, no
        // unordered maps; the harness may read real time (it measures
        // it) but still answers for panic paths.
        let clock = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(!run("crates/bench/src/stats.rs", clock).is_empty());
        assert!(run("crates/bench/src/timer.rs", clock).is_empty());
        let unwrap = "fn f() { x.unwrap(); }\n";
        assert!(!run("crates/bench/src/timer.rs", unwrap).is_empty());
        assert!(run("crates/bench/src/suites.rs", unwrap).is_empty());
    }

    #[test]
    fn spider_core_fleet_module_is_sim_tier() {
        // Client fleets are world state: per-client RNG streams, station
        // addressing, and counters all feed the byte-identity contract,
        // so the module answers to the full determinism tier.
        assert_eq!(tier_of("crates/spider-core/src/fleet.rs"), Tier::Sim);
        let hash = "use std::collections::HashMap;\n";
        assert!(!run("crates/spider-core/src/fleet.rs", hash).is_empty());
        let clock = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(!run("crates/spider-core/src/fleet.rs", clock).is_empty());
        let unwrap = "fn f() { x.unwrap(); }\n";
        assert!(!run("crates/spider-core/src/fleet.rs", unwrap).is_empty());
    }

    #[test]
    fn geo_is_sim_tier() {
        assert_eq!(tier_of("crates/geo/src/grid.rs"), Tier::Sim);
        assert_eq!(tier_of("crates/geo/src/lib.rs"), Tier::Sim);
        // Spatial queries feed simulation state, so the full determinism
        // tier applies: no hash maps, no wall clocks, no panic paths.
        let hash = "use std::collections::HashMap;\n";
        assert!(!run("crates/geo/src/grid.rs", hash).is_empty());
        let unwrap = "fn f() { x.unwrap(); }\n";
        assert!(!run("crates/geo/src/rank.rs", unwrap).is_empty());
    }

    #[test]
    fn unknown_crate_falls_back_to_lib_tier() {
        assert!(!known_crate("mystery"));
        assert_eq!(tier_of("crates/mystery/src/lib.rs"), Tier::Lib);
        // The panic policy still applies while the crate is unclassified.
        assert!(!run("crates/mystery/src/lib.rs", "fn f() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn render_is_rustc_style() {
        let v = run(SIM, "use std::collections::HashSet;\n");
        assert_eq!(
            v[0].render(),
            "crates/spider-core/src/world.rs:1: error[unordered-map]: \
             `HashSet` has process-randomized iteration order; use BTreeMap/BTreeSet \
             (or justify with `// simlint: allow(unordered-map) — <reason>`)"
        );
    }
}
