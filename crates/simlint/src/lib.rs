//! # simlint
//!
//! The workspace's in-tree determinism & panic-path linter. The campaign
//! cache (`crates/campaign`) is content-addressed on the assumption that
//! *same code + same `WorldConfig` ⇒ byte-identical `RunRecord`*; simlint
//! is the static gate that keeps that assumption true:
//!
//! * no `HashMap`/`HashSet`/`RandomState` state in simulation crates
//!   (iteration order is randomized per process),
//! * no wall-clock reads (`SystemTime`, `std::time`, `Instant::now`) in
//!   simulation crates,
//! * no `unwrap()`/`expect()`/`panic!` panic paths in library crates
//!   outside `#[cfg(test)]`.
//!
//! Every surviving exception must carry an in-diff justification:
//! `simlint: allow(<rule>)` followed by a mandatory reason, written as a
//! plain (non-doc) comment on the offending line or the line above.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p simlint --release
//! ```
//!
//! Diagnostics are rustc-style (`file:line: error[rule]: message`) on
//! stderr; a machine-readable summary lands at `target/simlint.json`; the
//! exit code is non-zero iff anything was flagged. `ci.sh` runs it as a
//! gating step before the build.
//!
//! The implementation is deliberately zero-dependency: a hand-rolled lexer
//! ([`lexer`]) that understands raw strings, char literals vs lifetimes,
//! and nested block comments, plus a line-scoped rule engine ([`rules`])
//! with a tiered per-crate policy, and a tree walker ([`walk`]) that
//! classifies files exactly the way `ci.sh` needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::{json_summary, Summary};
pub use rules::{lint_file, tier_of, Rule, Tier, Violation};
pub use walk::{lint_tree, rust_sources};
