//! # simlint
//!
//! The workspace's in-tree determinism & panic-path linter. The campaign
//! cache (`crates/campaign`) is content-addressed on the assumption that
//! *same code + same `WorldConfig` ⇒ byte-identical `RunRecord`*; simlint
//! is the static gate that keeps that assumption true:
//!
//! * no `HashMap`/`HashSet`/`RandomState` state in simulation crates
//!   (iteration order is randomized per process),
//! * no wall-clock reads (`SystemTime`, `std::time`, `Instant::now`) in
//!   simulation crates,
//! * no `unwrap()`/`expect()`/`panic!` panic paths in library crates
//!   outside `#[cfg(test)]`,
//! * no `partial_cmp` float ordering, no `std::env` reads, and no
//!   entropy-seeded randomness in simulation crates,
//! * no **public** sim/lib function that can *transitively* reach an
//!   unwaived panic site (`panic-reach`, with a rendered witness call
//!   path in the diagnostic),
//! * no crate directory without an explicit tier entry
//!   (`unclassified-crate` — the tier mapping is default-deny).
//!
//! Every surviving exception must carry an in-diff justification:
//! `simlint: allow(<rule>)` followed by a mandatory reason, written as a
//! plain (non-doc) comment on the offending line or the line above.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p simlint --release
//! ```
//!
//! Diagnostics are rustc-style (`file:line: error[rule]: message`) on
//! stderr; a machine-readable summary lands at `target/SIMLINT.json`
//! (violations plus call-graph shape, reachability findings, and cache
//! effectiveness); the exit code is 0 clean / 1 violations / 2 usage or
//! IO error. `ci.sh` runs it as the first gate, before the build.
//!
//! The implementation is deliberately zero-dependency: a hand-rolled
//! lexer ([`lexer`]) that understands raw strings, char literals vs
//! lifetimes, and nested block comments; a lightweight item parser
//! ([`parse`]) that recognizes `fn`/`impl`/`trait`/`mod` items, call
//! sites, and method receivers (so a *definition* of `partial_cmp` is
//! not a call, and `unwrap` in a doc comment is not a panic); a tiered
//! rule engine ([`rules`]); a workspace call graph with panic
//! reachability ([`graph`]); a content-hash-keyed fact cache
//! ([`cache`]) that keeps warm runs sub-second; and a tree walker
//! ([`walk`]) that ties the pipeline together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod walk;

pub use parse::{extract, FileFacts};
pub use report::{json_summary, CacheStats, Summary};
pub use rules::{lint_facts, lint_file, tier_of, Rule, Tier, Violation};
pub use walk::{analyze_tree, lint_tree, rust_sources, AnalyzeOptions};

/// Lint one file's source text as if it lived at `rel` in the workspace
/// (single-file call graph included). The fixture harness and doc
/// examples use this; the CLI goes through [`walk::analyze_tree`].
pub fn lint_source(rel: &str, source: &str) -> Vec<Violation> {
    lint_facts(&[extract(rel, source)])
}
