//! The machine-readable summary written to `target/SIMLINT.json`.
//!
//! Hand-rolled JSON (the workspace is registry-free); the schema is
//! small and stable:
//!
//! ```json
//! {
//!   "files_checked": 115,
//!   "errors": 0,
//!   "violations": [
//!     {"file": "…", "line": 12, "rule": "unordered-map", "message": "…"}
//!   ],
//!   "cache": {"enabled": true, "hits": 115, "misses": 0, "warm": true},
//!   "call_graph": {"functions": 2481, "edges": 7010, "public_functions": 1024},
//!   "reachability": {
//!     "panic_sources": 0,
//!     "flagged": [
//!       {"function": "World::step", "file": "…", "line": 40,
//!        "witness": "World::step (…:40) -> … -> unwrap() at …:97",
//!        "waived": true}
//!     ]
//!   }
//! }
//! ```
//!
//! `reachability.flagged` includes **waived** findings on purpose: the
//! artifact is the audit trail for exceptions, not just failures.

use crate::graph::GraphStats;
use crate::rules::Violation;

/// Cache effectiveness for one run.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// False when `--no-cache` disabled it.
    pub enabled: bool,
    /// Files whose facts came from the cache.
    pub hits: usize,
    /// Files lexed + parsed fresh.
    pub misses: usize,
}

impl CacheStats {
    /// True when every file hit the cache.
    pub fn warm(&self) -> bool {
        self.misses == 0 && self.hits > 0
    }
}

/// Aggregate lint outcome for one run.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Everything flagged, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Incremental-cache effectiveness.
    pub cache: CacheStats,
    /// Call-graph shape + reachability findings.
    pub graph: GraphStats,
}

impl Summary {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Render `summary` as the `target/SIMLINT.json` document.
pub fn json_summary(summary: &Summary) -> String {
    let mut out = String::with_capacity(1024 + summary.violations.len() * 128);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"files_checked\": {},\n  \"errors\": {},\n  \"violations\": [",
        summary.files_checked,
        summary.violations.len()
    ));
    for (i, v) in summary.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&v.file),
            v.line,
            json_string(&v.code),
            json_string(&v.message)
        ));
    }
    if !summary.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"cache\": {{\"enabled\": {}, \"hits\": {}, \"misses\": {}, \"warm\": {}}},\n",
        summary.cache.enabled,
        summary.cache.hits,
        summary.cache.misses,
        summary.cache.warm()
    ));
    out.push_str(&format!(
        "  \"call_graph\": {{\"functions\": {}, \"edges\": {}, \"public_functions\": {}}},\n",
        summary.graph.functions, summary.graph.edges, summary.graph.public_functions
    ));
    out.push_str(&format!(
        "  \"reachability\": {{\"panic_sources\": {}, \"flagged\": [",
        summary.graph.panic_sources
    ));
    for (i, e) in summary.graph.flagged.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"function\": {}, \"file\": {}, \"line\": {}, \"witness\": {}, \"waived\": {}}}",
            json_string(&e.function),
            json_string(&e.file),
            e.line,
            json_string(&e.witness),
            e.waived
        ));
    }
    if !summary.graph.flagged.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]}\n}\n");
    out
}

/// Minimal JSON string escaping.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ReachEntry;
    use crate::rules::Violation;

    #[test]
    fn clean_summary_serializes() {
        let s = Summary {
            files_checked: 3,
            cache: CacheStats {
                enabled: true,
                hits: 3,
                misses: 0,
            },
            ..Summary::default()
        };
        let json = json_summary(&s);
        assert!(json.contains("\"files_checked\": 3"));
        assert!(json.contains("\"errors\": 0"));
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains(
            "\"cache\": {\"enabled\": true, \"hits\": 3, \"misses\": 0, \"warm\": true}"
        ));
        assert!(json.contains("\"call_graph\""));
        assert!(json.contains("\"reachability\""));
    }

    #[test]
    fn cold_run_is_not_warm() {
        let s = CacheStats {
            enabled: true,
            hits: 0,
            misses: 5,
        };
        assert!(!s.warm());
        let mixed = CacheStats {
            enabled: true,
            hits: 4,
            misses: 1,
        };
        assert!(!mixed.warm());
    }

    #[test]
    fn violations_escape_cleanly() {
        let s = Summary {
            files_checked: 1,
            violations: vec![Violation {
                file: "a.rs".to_string(),
                line: 9,
                code: "panic-path".to_string(),
                message: "uses `unwrap()` on \"stuff\"".to_string(),
            }],
            ..Summary::default()
        };
        let json = json_summary(&s);
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\\\"stuff\\\""));
        assert!(json.contains("\"line\": 9"));
    }

    #[test]
    fn flagged_entries_serialize_with_witness() {
        let s = Summary {
            files_checked: 1,
            graph: GraphStats {
                functions: 2,
                edges: 1,
                public_functions: 1,
                panic_sources: 1,
                flagged: vec![ReachEntry {
                    function: "World::step".to_string(),
                    file: "crates/spider-core/src/world.rs".to_string(),
                    line: 40,
                    witness: "World::step (w.rs:40) -> unwrap() at w.rs:97".to_string(),
                    waived: true,
                }],
            },
            ..Summary::default()
        };
        let json = json_summary(&s);
        assert!(json.contains("\"panic_sources\": 1"));
        assert!(json.contains("\"function\": \"World::step\""));
        assert!(json.contains("\"waived\": true"));
        assert!(json.contains("unwrap() at w.rs:97"));
    }
}
