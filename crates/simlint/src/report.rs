//! The machine-readable summary written to `target/simlint.json`.
//!
//! Hand-rolled JSON (the workspace is registry-free); the schema is small
//! and stable:
//!
//! ```json
//! {
//!   "files_checked": 97,
//!   "errors": 0,
//!   "violations": [
//!     {"file": "…", "line": 12, "rule": "unordered-map", "message": "…"}
//!   ]
//! }
//! ```

use crate::rules::Violation;

/// Aggregate lint outcome for one run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Everything flagged, sorted by file then line.
    pub violations: Vec<Violation>,
}

impl Summary {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Render `summary` as the `target/simlint.json` document.
pub fn json_summary(summary: &Summary) -> String {
    let mut out = String::with_capacity(256 + summary.violations.len() * 128);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"files_checked\": {},\n  \"errors\": {},\n  \"violations\": [",
        summary.files_checked,
        summary.violations.len()
    ));
    for (i, v) in summary.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&v.file),
            v.line,
            json_string(&v.code),
            json_string(&v.message)
        ));
    }
    if !summary.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_summary_serializes() {
        let s = Summary {
            files_checked: 3,
            violations: vec![],
        };
        let json = json_summary(&s);
        assert!(json.contains("\"files_checked\": 3"));
        assert!(json.contains("\"errors\": 0"));
        assert!(json.contains("\"violations\": []"));
    }

    #[test]
    fn violations_escape_cleanly() {
        let s = Summary {
            files_checked: 1,
            violations: vec![Violation {
                file: "a.rs".to_string(),
                line: 9,
                code: "panic-path".to_string(),
                message: "uses `unwrap()` on \"stuff\"".to_string(),
            }],
        };
        let json = json_summary(&s);
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\\\"stuff\\\""));
        assert!(json.contains("\"line\": 9"));
    }
}
