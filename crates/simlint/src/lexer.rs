//! A hand-rolled lexer that reduces a Rust source file to what the rule
//! engine needs: per-line *code text* with every string, char literal, and
//! comment blanked out, plus the comment text itself (where waivers live).
//!
//! The lexer understands exactly the constructs that would otherwise make a
//! line-oriented scanner lie:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`),
//! * string literals with escapes (`"a \" b"`), byte strings (`b"…"`),
//! * raw strings with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * char and byte-char literals (`'a'`, `'\n'`, `b'\''`) — disambiguated
//!   from lifetimes (`'a`, `'static`),
//! * numeric literals are passed through (they cannot confuse the rules).
//!
//! Blanking replaces every masked character with a space, so byte columns
//! in diagnostics still line up with the original source.

/// One physical source line after lexing.
#[derive(Debug, Clone, Default)]
pub struct LexedLine {
    /// The line's code with comments, strings, and char literals blanked.
    pub code: String,
    /// Text of every comment that *starts* on this line (`//` body or
    /// `/* … */` body, without the delimiters). Waivers are parsed from
    /// these.
    pub comments: Vec<String>,
}

/// A whole file, lexed line by line. Lines are 0-indexed here; diagnostics
/// add 1 when printing.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// One entry per physical source line.
    pub lines: Vec<LexedLine>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Ordinary code.
    Code,
    /// Inside `// …` until end of line.
    LineComment,
    /// Inside `/* … */`, tracking nesting depth.
    BlockComment,
    /// Inside `"…"`.
    Str,
    /// Inside `r##"…"##` with the given hash count.
    RawStr(usize),
    /// Inside `'…'`.
    CharLit,
}

/// Lex `source` into per-line code/comment streams.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<LexedLine> = vec![LexedLine::default()];
    let mut mode = Mode::Code;
    let mut depth = 0usize; // block-comment nesting
    let mut comment_buf = String::new();
    let mut comment_start_line = 0usize;
    let mut i = 0usize;

    // `lines` starts non-empty and only grows, so `last_mut` always
    // succeeds; the empty-vec arm keeps this free of panic paths.
    macro_rules! cur {
        () => {
            match lines.last_mut() {
                Some(line) => line,
                None => unreachable!("lines is never empty"),
            }
        };
    }

    let flush_comment = |lines: &mut Vec<LexedLine>, buf: &mut String, start: usize| {
        if !buf.is_empty() || start < lines.len() {
            lines[start].comments.push(std::mem::take(buf));
        }
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            match mode {
                Mode::LineComment => {
                    flush_comment(&mut lines, &mut comment_buf, comment_start_line);
                    mode = Mode::Code;
                }
                Mode::BlockComment => comment_buf.push('\n'),
                _ => {}
            }
            lines.push(LexedLine::default());
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                // Comment openers.
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    mode = Mode::LineComment;
                    comment_buf.clear();
                    comment_start_line = lines.len() - 1;
                    cur!().code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment;
                    depth = 1;
                    comment_buf.clear();
                    comment_start_line = lines.len() - 1;
                    cur!().code.push_str("  ");
                    i += 2;
                    continue;
                }
                // Raw strings: r"…", r#"…"#, and the b-prefixed forms.
                // (The optional `b` was already emitted as code; harmless.)
                if c == 'r' && !prev_is_ident(&chars, i) {
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        mode = Mode::RawStr(hashes);
                        for _ in i..=j {
                            cur!().code.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    mode = Mode::Str;
                    cur!().code.push(' ');
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal or lifetime? A lifetime is `'` followed
                    // by an identifier NOT closed by another `'` right after
                    // one character. `'a'` is a char, `'a` / `'static` are
                    // lifetimes, `'\n'` is a char.
                    if chars.get(i + 1) == Some(&'\\')
                        || (chars.get(i + 1).is_some() && chars.get(i + 2) == Some(&'\''))
                    {
                        mode = Mode::CharLit;
                        cur!().code.push(' ');
                        i += 1;
                        continue;
                    }
                    // Lifetime (or stray quote): pass through as code.
                    cur!().code.push(c);
                    i += 1;
                    continue;
                }
                cur!().code.push(c);
                i += 1;
            }
            Mode::LineComment => {
                comment_buf.push(c);
                cur!().code.push(' ');
                i += 1;
            }
            Mode::BlockComment => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    comment_buf.push_str("/*");
                    cur!().code.push_str("  ");
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    cur!().code.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        flush_comment(&mut lines, &mut comment_buf, comment_start_line);
                        mode = Mode::Code;
                    } else {
                        comment_buf.push_str("*/");
                    }
                } else {
                    comment_buf.push(c);
                    cur!().code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' && chars.get(i + 1).is_some() {
                    cur!().code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    cur!().code.push(' ');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur!().code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        for _ in i..j {
                            cur!().code.push(' ');
                        }
                        mode = Mode::Code;
                        i = j;
                        continue;
                    }
                }
                cur!().code.push(' ');
                i += 1;
            }
            Mode::CharLit => {
                if c == '\\' && chars.get(i + 1).is_some() {
                    cur!().code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    cur!().code.push(' ');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur!().code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // EOF inside a line comment still carries a (possible) waiver.
    if mode == Mode::LineComment || mode == Mode::BlockComment {
        flush_comment(&mut lines, &mut comment_buf, comment_start_line);
    }
    LexedFile { lines }
}

/// Is the character before `i` part of an identifier? Used so `r"` in
/// `var"` (impossible) or `bar"` is not misread as a raw-string opener
/// while `br"` still is (`b` is a prefix, not an identifier tail — but a
/// preceding identifier character that is not exactly a `b`-prefix means
/// `r` belongs to a name like `for` … `r`).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let p = chars[i - 1];
    if p == 'b' {
        // A `b` prefix only counts as a prefix when it is itself not part
        // of a longer identifier (`rb` in `verb"` can't occur; `abr"` would
        // mean identifier `ab` + raw string, which is not valid Rust — err
        // on the side of treating it as a raw string).
        return i >= 2 && (chars[i - 2].is_alphanumeric() || chars[i - 2] == '_');
    }
    p.is_alphanumeric() || p == '_'
}

/// Compute, for every line, whether it falls inside a `#[cfg(test)]` item
/// (module, function, impl, or `use`). Works on the blanked code, so
/// braces inside strings or comments cannot derail the brace matching.
pub fn test_scoped_lines(file: &LexedFile) -> Vec<bool> {
    let n = file.lines.len();
    let mut scoped = vec![false; n];
    // Flatten to (line, char) stream of code.
    let stream: Vec<(usize, char)> = file
        .lines
        .iter()
        .enumerate()
        .flat_map(|(ln, l)| l.code.chars().map(move |c| (ln, c)).chain([(ln, '\n')]))
        .collect();
    let mut i = 0usize;
    while i < stream.len() {
        if let Some(next) = match_cfg_test(&stream, i) {
            // Skip any further attributes (`#[…]`) between the cfg and the
            // item, then skip the item body: to the matching `}` of the
            // first `{`, or to a `;` if one comes first (e.g. `use`).
            let mut j = next;
            loop {
                while j < stream.len() && stream[j].1.is_whitespace() {
                    j += 1;
                }
                if j + 1 < stream.len() && stream[j].1 == '#' && stream[j + 1].1 == '[' {
                    let mut depth = 0i32;
                    while j < stream.len() {
                        match stream[j].1 {
                            '[' => depth += 1,
                            ']' => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                } else {
                    break;
                }
            }
            let start_line = stream.get(i).map(|&(l, _)| l).unwrap_or(0);
            let mut brace = 0i32;
            let mut end = j;
            while end < stream.len() {
                match stream[end].1 {
                    '{' => brace += 1,
                    '}' => {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    }
                    ';' if brace == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            let end_line = stream.get(end.min(stream.len() - 1)).map(|&(l, _)| l);
            if let Some(end_line) = end_line {
                for s in scoped.iter_mut().take(end_line + 1).skip(start_line) {
                    *s = true;
                }
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    scoped
}

/// If an attribute of the form `#[cfg(test)]` (or `#[cfg(all(test, …))]` —
/// any cfg attribute whose argument mentions the bare token `test`) starts
/// at `i`, return the stream index just past its closing `]`.
fn match_cfg_test(stream: &[(usize, char)], i: usize) -> Option<usize> {
    let mut j = i;
    if stream.get(j)?.1 != '#' {
        return None;
    }
    j += 1;
    while stream.get(j)?.1.is_whitespace() {
        j += 1;
    }
    if stream.get(j)?.1 != '[' {
        return None;
    }
    // Collect the attribute text to its matching `]`.
    let mut depth = 0i32;
    let mut text = String::new();
    while j < stream.len() {
        let c = stream[j].1;
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        text.push(c);
        j += 1;
    }
    if depth != 0 {
        return None;
    }
    let inner = text.trim_start_matches('[').trim();
    if !inner.starts_with("cfg") {
        return None;
    }
    let args = inner["cfg".len()..].trim_start();
    if !args.starts_with('(') {
        return None;
    }
    if has_word(args, "test") {
        Some(j + 1)
    } else {
        None
    }
}

/// Whole-word search: `needle` present in `hay` with non-identifier
/// characters (or boundaries) on both sides.
pub fn has_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle).is_some()
}

/// Byte offset of the first whole-word occurrence of `needle` in `hay`.
pub fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let ok_before = start == 0 || !is_ident_byte(bytes[start - 1]);
        let ok_after = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if ok_before && ok_after {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).lines.iter().map(|l| l.code.clone()).collect()
    }

    #[test]
    fn line_comment_blanked_and_captured() {
        let f = lex("let x = 1; // HashMap here\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert_eq!(f.lines[0].comments[0].trim(), "HashMap here");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let c = code_of(src);
        assert!(c[0].starts_with('a'));
        assert!(c[0].ends_with('b'));
        assert!(!c[0].contains("outer"));
        assert!(!c[0].contains("still"));
    }

    #[test]
    fn string_with_comment_marker_not_a_comment() {
        let c = code_of(r#"let s = "// not a comment"; after()"#);
        assert!(c[0].contains("after()"));
        assert!(!c[0].contains("not a comment"));
    }

    #[test]
    fn raw_string_with_hashes_and_quote() {
        let src = "let s = r#\"she said \"hi\" // x\"#; tail()";
        let c = code_of(src);
        assert!(c[0].contains("tail()"));
        assert!(!c[0].contains("hi"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let c = code_of("fn f<'a>(x: &'a str) { let q = '\\''; let h = 'h'; g(x) }");
        assert!(c[0].contains("<'a>"));
        assert!(c[0].contains("&'a str"));
        assert!(!c[0].contains("'h'"));
        assert!(c[0].contains("g(x)"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!has_word("MyHashMapLike", "HashMap"));
        assert!(!has_word("unwrap_or(0)", "unwrap"));
    }

    #[test]
    fn cfg_test_module_scoped() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let f = lex(src);
        let scoped = test_scoped_lines(&f);
        assert_eq!(scoped, vec![false, true, true, true, true, false, false]);
    }
}
