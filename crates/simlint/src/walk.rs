//! Workspace traversal: find every `.rs` file under a root, extract
//! facts (through the incremental cache when enabled), lint locally,
//! run the call-graph analysis, and aggregate everything into a
//! [`Summary`].

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::cache::{fnv1a64, store, Cache};
use crate::graph;
use crate::parse::{extract, FileFacts};
use crate::report::{CacheStats, Summary};
use crate::rules::{known_crate, lint_local, Violation};

/// Directories never descended into, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Collect every `.rs` file under `root`, workspace-relative with forward
/// slashes, sorted for deterministic output.
pub fn rust_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// How [`analyze_tree`] should use the incremental cache.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Where the fact cache lives; `None` disables caching entirely.
    pub cache_path: Option<PathBuf>,
}

/// Every directory under `root/crates/` with no entry in the tier table
/// is a violation: the tier mapping is default-deny so a future crate
/// cannot silently skip enforcement. (There is nothing to waive — the
/// fix is a one-line tier entry in `rules.rs`.)
fn unclassified_crates(root: &Path) -> io::Result<Vec<Violation>> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    if !crates_dir.is_dir() {
        return Ok(out);
    }
    let mut names: Vec<String> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .collect();
    names.sort();
    for name in names {
        if !known_crate(&name) {
            out.push(Violation {
                file: format!("crates/{name}"),
                line: 1,
                code: "unclassified-crate".to_string(),
                message: format!(
                    "crate `{name}` has no tier entry; add it to the tier table in \
                     `crates/simlint/src/rules.rs` (the mapping is default-deny)"
                ),
            });
        }
    }
    Ok(out)
}

/// The full pipeline over every `.rs` file under `root`: hash + fact
/// extraction (cache-aware), per-file rules, call-graph reachability,
/// and the default-deny crate-tier check.
pub fn analyze_tree(root: &Path, opts: &AnalyzeOptions) -> io::Result<Summary> {
    let sources = rust_sources(root)?;
    let cache = match &opts.cache_path {
        Some(p) => Cache::load(p),
        None => Cache::default(),
    };
    let mut stats = CacheStats {
        enabled: opts.cache_path.is_some(),
        hits: 0,
        misses: 0,
    };

    let mut files: Vec<FileFacts> = Vec::with_capacity(sources.len());
    let mut hashes: Vec<u64> = Vec::with_capacity(sources.len());
    for path in &sources {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(path)?;
        let hash = fnv1a64(source.as_bytes());
        let facts = match cache.lookup(&rel, hash) {
            Some(cached) => {
                stats.hits += 1;
                cached.clone()
            }
            None => {
                stats.misses += 1;
                extract(&rel, &source)
            }
        };
        hashes.push(hash);
        files.push(facts);
    }

    if let Some(p) = &opts.cache_path {
        let entries: Vec<(String, u64, &FileFacts)> = files
            .iter()
            .zip(&hashes)
            .map(|(f, h)| (f.rel.clone(), *h, f))
            .collect();
        store(p, &entries)?;
    }

    // The rule + graph phases always run fresh: cross-file diagnostics
    // (panic-reach, workspace-wide waiver-unused) must see today's
    // workspace, not the one some cache entry was born in.
    let outcomes: Vec<_> = files.iter().map(lint_local).collect();
    let graph = graph::analyze(&files, &outcomes);

    let mut violations: Vec<Violation> = outcomes.into_iter().flat_map(|o| o.violations).collect();
    violations.extend(graph.violations);
    violations.extend(unclassified_crates(root)?);
    violations.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.code.cmp(&b.code))
    });

    Ok(Summary {
        files_checked: files.len(),
        violations,
        cache: stats,
        graph: graph.stats,
    })
}

/// Lint every `.rs` file under `root` with no cache. Returns
/// `(files_checked, violations)` sorted by file then line.
pub fn lint_tree(root: &Path) -> io::Result<(usize, Vec<Violation>)> {
    let summary = analyze_tree(root, &AnalyzeOptions::default())?;
    Ok((summary.files_checked, summary.violations))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simlint-walk-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn walks_and_flags_a_seeded_violation() {
        let root = scratch("seeded");
        let src_dir = root.join("crates/spider-core/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("bad.rs"),
            "use std::collections::HashMap;\npub fn f() { Option::<u8>::None.unwrap(); }\n",
        )
        .unwrap();
        // target/ content must be ignored.
        let tgt = root.join("target/debug");
        fs::create_dir_all(&tgt).unwrap();
        fs::write(tgt.join("gen.rs"), "use std::collections::HashMap;\n").unwrap();

        let (checked, violations) = lint_tree(&root).unwrap();
        assert_eq!(checked, 1);
        let codes: Vec<&str> = violations.iter().map(|v| v.code.as_str()).collect();
        assert!(codes.contains(&"unordered-map"), "{violations:?}");
        assert!(codes.contains(&"panic-path"), "{violations:?}");
        assert!(violations
            .iter()
            .all(|v| v.file == "crates/spider-core/src/bad.rs"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_crate_dir_is_flagged_known_ones_are_not() {
        let root = scratch("tiers");
        for name in ["spider-core", "rogue"] {
            fs::create_dir_all(root.join("crates").join(name).join("src")).unwrap();
            fs::write(
                root.join("crates").join(name).join("src/lib.rs"),
                "pub fn ok() {}\n",
            )
            .unwrap();
        }
        let (_, violations) = lint_tree(&root).unwrap();
        let tiers: Vec<&Violation> = violations
            .iter()
            .filter(|v| v.code == "unclassified-crate")
            .collect();
        assert_eq!(tiers.len(), 1, "{violations:?}");
        assert_eq!(tiers[0].file, "crates/rogue");
        assert!(tiers[0].message.contains("default-deny"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn second_run_is_fully_warm_and_invalidates_on_edit() {
        let root = scratch("cache");
        let src_dir = root.join("crates/spider-core/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(src_dir.join("a.rs"), "pub fn a() {}\n").unwrap();
        fs::write(src_dir.join("b.rs"), "pub fn b() { a(); }\n").unwrap();
        let opts = AnalyzeOptions {
            cache_path: Some(root.join("target/simlint-cache.json")),
        };

        let cold = analyze_tree(&root, &opts).unwrap();
        assert_eq!((cold.cache.hits, cold.cache.misses), (0, 2));
        assert!(!cold.cache.warm());

        let warm = analyze_tree(&root, &opts).unwrap();
        assert_eq!((warm.cache.hits, warm.cache.misses), (2, 0));
        assert!(warm.cache.warm());
        assert_eq!(warm.violations, cold.violations);
        assert_eq!(warm.graph.functions, cold.graph.functions);
        assert_eq!(warm.graph.edges, cold.graph.edges);

        // Editing one file re-parses just that file — and the graph
        // phase still sees the change (b now reaches a panic in a).
        fs::write(src_dir.join("a.rs"), "pub fn a() { x.unwrap(); }\n").unwrap();
        let edited = analyze_tree(&root, &opts).unwrap();
        assert_eq!((edited.cache.hits, edited.cache.misses), (1, 1));
        assert!(edited
            .violations
            .iter()
            .any(|v| v.code == "panic-reach" && v.file == "crates/spider-core/src/b.rs"));
        let _ = fs::remove_dir_all(&root);
    }
}
