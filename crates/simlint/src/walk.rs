//! Workspace traversal: find every `.rs` file under a root, lint each one,
//! and aggregate the results.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, test_scoped_lines};
use crate::rules::{lint_file, Violation};

/// Directories never descended into, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Collect every `.rs` file under `root`, workspace-relative with forward
/// slashes, sorted for deterministic output.
pub fn rust_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every `.rs` file under `root`. Returns `(files_checked, violations)`
/// with violations sorted by file then line.
pub fn lint_tree(root: &Path) -> io::Result<(usize, Vec<Violation>)> {
    let mut violations = Vec::new();
    let sources = rust_sources(root)?;
    let checked = sources.len();
    for path in &sources {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(path)?;
        let lexed = lex(&source);
        let scoped = test_scoped_lines(&lexed);
        violations.extend(lint_file(&rel, &lexed, &scoped));
    }
    violations.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok((checked, violations))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simlint-walk-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn walks_and_flags_a_seeded_violation() {
        let root = scratch("seeded");
        let src_dir = root.join("crates/spider-core/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("bad.rs"),
            "use std::collections::HashMap;\npub fn f() { Option::<u8>::None.unwrap(); }\n",
        )
        .unwrap();
        // target/ content must be ignored.
        let tgt = root.join("target/debug");
        fs::create_dir_all(&tgt).unwrap();
        fs::write(tgt.join("gen.rs"), "use std::collections::HashMap;\n").unwrap();

        let (checked, violations) = lint_tree(&root).unwrap();
        assert_eq!(checked, 1);
        let codes: Vec<&str> = violations.iter().map(|v| v.code.as_str()).collect();
        assert!(codes.contains(&"unordered-map"), "{violations:?}");
        assert!(codes.contains(&"panic-path"), "{violations:?}");
        assert!(violations
            .iter()
            .all(|v| v.file == "crates/spider-core/src/bad.rs"));
        let _ = fs::remove_dir_all(&root);
    }
}
