//! # dhcp
//!
//! The DHCP substrate of the Spider (CoNEXT 2011) reproduction.
//!
//! The paper's central observation is that the DHCP join — not channel
//! switching — is what breaks virtualized Wi-Fi at vehicular speed: the
//! exchange cannot be PSM-buffered, its pacing is set by the *server*
//! (`β ∈ [βmin, βmax]`), and its failure handling is set by *client timers*
//! (1 s/3 s/60 s stock; 100–600 ms reduced). All three knobs are first-class
//! here:
//!
//! * [`message`] — RFC 2131/2132 wire format (BOOTP header + options).
//! * [`client`] — the acquisition state machine with stock/reduced timer
//!   policies and Spider's lease-cache INIT-REBOOT shortcut.
//! * [`server`] — per-AP lease pools with a configurable response-delay
//!   distribution (the paper's `β`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod message;
pub mod server;

pub use client::{DhcpAction, DhcpClient, DhcpClientConfig, Lease};
pub use message::{DhcpError, DhcpMessage, MessageType};
pub use server::{DhcpServer, DhcpServerConfig, ServerCounters};
