//! DHCP message wire format (RFC 2131/2132 subset).
//!
//! Messages round-trip through the genuine BOOTP layout — fixed 236-byte
//! header, magic cookie, then TLV options — because the cost the paper
//! measures is a protocol cost: four messages (DISCOVER/OFFER/REQUEST/ACK),
//! each of which can be lost while the virtualized radio is off-channel.
//!
//! Implemented options are the ones the exchange needs: message type (53),
//! requested IP (50), server identifier (54), lease time (51), subnet mask
//! (1), router (3), end (255). Unknown options are skipped on decode, as a
//! real client does.

use core::fmt;
use sim_engine::wire::{Bytes, Reader, WireError, Writer};
use std::net::Ipv4Addr;

/// BOOTP op: client request.
pub const OP_REQUEST: u8 = 1;
/// BOOTP op: server reply.
pub const OP_REPLY: u8 = 2;

const MAGIC_COOKIE: u32 = 0x6382_5363;
const OPT_SUBNET: u8 = 1;
const OPT_ROUTER: u8 = 3;
const OPT_REQUESTED_IP: u8 = 50;
const OPT_LEASE_TIME: u8 = 51;
const OPT_MSG_TYPE: u8 = 53;
const OPT_SERVER_ID: u8 = 54;
const OPT_END: u8 = 255;
const OPT_PAD: u8 = 0;

/// DHCP message type (option 53).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// Client broadcast to locate servers.
    Discover,
    /// Server offer of an address.
    Offer,
    /// Client request of the offered (or cached) address.
    Request,
    /// Server acknowledgement: the lease is granted.
    Ack,
    /// Server refusal.
    Nak,
    /// Client releases its lease.
    Release,
}

impl MessageType {
    fn to_wire(self) -> u8 {
        match self {
            MessageType::Discover => 1,
            MessageType::Offer => 2,
            MessageType::Request => 3,
            MessageType::Ack => 5,
            MessageType::Nak => 6,
            MessageType::Release => 7,
        }
    }

    fn from_wire(v: u8) -> Option<MessageType> {
        Some(match v {
            1 => MessageType::Discover,
            2 => MessageType::Offer,
            3 => MessageType::Request,
            5 => MessageType::Ack,
            6 => MessageType::Nak,
            7 => MessageType::Release,
            _ => return None,
        })
    }
}

impl fmt::Display for MessageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageType::Discover => "DISCOVER",
            MessageType::Offer => "OFFER",
            MessageType::Request => "REQUEST",
            MessageType::Ack => "ACK",
            MessageType::Nak => "NAK",
            MessageType::Release => "RELEASE",
        };
        write!(f, "{s}")
    }
}

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhcpError {
    /// Buffer shorter than the layout requires.
    Truncated,
    /// Magic cookie mismatch — not a DHCP packet.
    BadCookie,
    /// Missing or unknown message-type option.
    BadMessageType,
    /// An option's length field overruns the buffer.
    BadOption,
}

impl fmt::Display for DhcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhcpError::Truncated => write!(f, "DHCP message truncated"),
            DhcpError::BadCookie => write!(f, "bad DHCP magic cookie"),
            DhcpError::BadMessageType => write!(f, "missing/unknown DHCP message type"),
            DhcpError::BadOption => write!(f, "malformed DHCP option"),
        }
    }
}

impl std::error::Error for DhcpError {}

impl From<WireError> for DhcpError {
    fn from(_: WireError) -> DhcpError {
        DhcpError::Truncated
    }
}

/// A DHCP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpMessage {
    /// BOOTP op code ([`OP_REQUEST`] / [`OP_REPLY`]).
    pub op: u8,
    /// Transaction id chosen by the client; replies echo it.
    pub xid: u32,
    /// Seconds since the client began acquisition.
    pub secs: u16,
    /// Client's current IP (`0.0.0.0` during acquisition).
    pub ciaddr: Ipv4Addr,
    /// "Your" address: the one being offered/assigned.
    pub yiaddr: Ipv4Addr,
    /// Client hardware (MAC) address.
    pub chaddr: [u8; 6],
    /// Option 53.
    pub msg_type: MessageType,
    /// Option 50: the address the client asks for (REQUEST / INIT-REBOOT).
    pub requested_ip: Option<Ipv4Addr>,
    /// Option 54: which server the client selected / which server replies.
    pub server_id: Option<Ipv4Addr>,
    /// Option 51: lease duration in seconds.
    pub lease_secs: Option<u32>,
    /// Option 1.
    pub subnet_mask: Option<Ipv4Addr>,
    /// Option 3.
    pub router: Option<Ipv4Addr>,
}

impl DhcpMessage {
    /// A client DISCOVER.
    pub fn discover(xid: u32, chaddr: [u8; 6]) -> DhcpMessage {
        DhcpMessage {
            op: OP_REQUEST,
            xid,
            secs: 0,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            msg_type: MessageType::Discover,
            requested_ip: None,
            server_id: None,
            lease_secs: None,
            subnet_mask: None,
            router: None,
        }
    }

    /// A server OFFER of `ip` with the given lease.
    pub fn offer(
        xid: u32,
        chaddr: [u8; 6],
        ip: Ipv4Addr,
        server: Ipv4Addr,
        lease_secs: u32,
    ) -> DhcpMessage {
        DhcpMessage {
            op: OP_REPLY,
            xid,
            secs: 0,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: ip,
            chaddr,
            msg_type: MessageType::Offer,
            requested_ip: None,
            server_id: Some(server),
            lease_secs: Some(lease_secs),
            subnet_mask: Some(Ipv4Addr::new(255, 255, 255, 0)),
            router: Some(server),
        }
    }

    /// A client REQUEST for `ip` from `server`.
    pub fn request(xid: u32, chaddr: [u8; 6], ip: Ipv4Addr, server: Ipv4Addr) -> DhcpMessage {
        DhcpMessage {
            op: OP_REQUEST,
            xid,
            secs: 0,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            msg_type: MessageType::Request,
            requested_ip: Some(ip),
            server_id: Some(server),
            lease_secs: None,
            subnet_mask: None,
            router: None,
        }
    }

    /// A server ACK granting `ip`.
    pub fn ack(
        xid: u32,
        chaddr: [u8; 6],
        ip: Ipv4Addr,
        server: Ipv4Addr,
        lease_secs: u32,
    ) -> DhcpMessage {
        DhcpMessage {
            msg_type: MessageType::Ack,
            ..DhcpMessage::offer(xid, chaddr, ip, server, lease_secs)
        }
    }

    /// A server NAK.
    pub fn nak(xid: u32, chaddr: [u8; 6], server: Ipv4Addr) -> DhcpMessage {
        DhcpMessage {
            op: OP_REPLY,
            xid,
            secs: 0,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            msg_type: MessageType::Nak,
            requested_ip: None,
            server_id: Some(server),
            lease_secs: None,
            subnet_mask: None,
            router: None,
        }
    }

    /// A client RELEASE of `ip` back to `server`.
    pub fn release(xid: u32, chaddr: [u8; 6], ip: Ipv4Addr, server: Ipv4Addr) -> DhcpMessage {
        DhcpMessage {
            op: OP_REQUEST,
            xid,
            secs: 0,
            ciaddr: ip,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            msg_type: MessageType::Release,
            requested_ip: None,
            server_id: Some(server),
            lease_secs: None,
            subnet_mask: None,
            router: None,
        }
    }

    /// Encode to wire bytes (BOOTP header + magic + options).
    pub fn encode(&self) -> Bytes {
        let mut buf = Writer::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encode into an existing [`Writer`], appending exactly
    /// [`DhcpMessage::wire_len`] bytes; lets hot paths reuse one scratch
    /// buffer across encodes.
    pub fn encode_into(&self, buf: &mut Writer) {
        buf.put_u8(self.op);
        buf.put_u8(1); // htype: Ethernet
        buf.put_u8(6); // hlen
        buf.put_u8(0); // hops
        buf.put_u32(self.xid);
        buf.put_u16(self.secs);
        buf.put_u16(0); // flags
        buf.put_slice(&self.ciaddr.octets());
        buf.put_slice(&self.yiaddr.octets());
        buf.put_slice(&[0u8; 4]); // siaddr
        buf.put_slice(&[0u8; 4]); // giaddr
        buf.put_slice(&self.chaddr);
        buf.put_slice(&[0u8; 10]); // chaddr padding to 16
        buf.put_slice(&[0u8; 64]); // sname
        buf.put_slice(&[0u8; 128]); // file
        buf.put_u32(MAGIC_COOKIE);

        buf.put_u8(OPT_MSG_TYPE);
        buf.put_u8(1);
        buf.put_u8(self.msg_type.to_wire());
        if let Some(ip) = self.requested_ip {
            buf.put_u8(OPT_REQUESTED_IP);
            buf.put_u8(4);
            buf.put_slice(&ip.octets());
        }
        if let Some(ip) = self.server_id {
            buf.put_u8(OPT_SERVER_ID);
            buf.put_u8(4);
            buf.put_slice(&ip.octets());
        }
        if let Some(secs) = self.lease_secs {
            buf.put_u8(OPT_LEASE_TIME);
            buf.put_u8(4);
            buf.put_u32(secs);
        }
        if let Some(ip) = self.subnet_mask {
            buf.put_u8(OPT_SUBNET);
            buf.put_u8(4);
            buf.put_slice(&ip.octets());
        }
        if let Some(ip) = self.router {
            buf.put_u8(OPT_ROUTER);
            buf.put_u8(4);
            buf.put_slice(&ip.octets());
        }
        buf.put_u8(OPT_END);
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<DhcpMessage, DhcpError> {
        let mut buf = Reader::new(bytes);
        let op = buf.get_u8()?;
        let _htype = buf.get_u8()?;
        let _hlen = buf.get_u8()?;
        let _hops = buf.get_u8()?;
        let xid = buf.get_u32()?;
        let secs = buf.get_u16()?;
        let _flags = buf.get_u16()?;
        let ciaddr = take_ip(&mut buf)?;
        let yiaddr = take_ip(&mut buf)?;
        let _siaddr = take_ip(&mut buf)?;
        let _giaddr = take_ip(&mut buf)?;
        let mut chaddr = [0u8; 6];
        buf.read_exact(&mut chaddr)?;
        buf.advance(10 + 64 + 128)?;
        if buf.get_u32()? != MAGIC_COOKIE {
            return Err(DhcpError::BadCookie);
        }

        let mut msg_type = None;
        let mut requested_ip = None;
        let mut server_id = None;
        let mut lease_secs = None;
        let mut subnet_mask = None;
        let mut router = None;
        while buf.remaining() > 0 {
            let code = buf.get_u8()?;
            if code == OPT_END {
                break;
            }
            if code == OPT_PAD {
                continue;
            }
            // A truncated option is a malformed option, not a short packet.
            let len = buf.get_u8().map_err(|_| DhcpError::BadOption)? as usize;
            let payload = buf.take(len).map_err(|_| DhcpError::BadOption)?;
            match code {
                OPT_MSG_TYPE => {
                    if len != 1 {
                        return Err(DhcpError::BadOption);
                    }
                    msg_type = MessageType::from_wire(payload[0]);
                    if msg_type.is_none() {
                        return Err(DhcpError::BadMessageType);
                    }
                }
                OPT_REQUESTED_IP => requested_ip = Some(ip_from(payload)?),
                OPT_SERVER_ID => server_id = Some(ip_from(payload)?),
                OPT_LEASE_TIME => {
                    if len != 4 {
                        return Err(DhcpError::BadOption);
                    }
                    lease_secs = Some(u32::from_be_bytes([
                        payload[0], payload[1], payload[2], payload[3],
                    ]));
                }
                OPT_SUBNET => subnet_mask = Some(ip_from(payload)?),
                OPT_ROUTER => router = Some(ip_from(payload)?),
                _ => {} // skip unknown options
            }
        }
        Ok(DhcpMessage {
            op,
            xid,
            secs,
            ciaddr,
            yiaddr,
            chaddr,
            msg_type: msg_type.ok_or(DhcpError::BadMessageType)?,
            requested_ip,
            server_id,
            lease_secs,
            subnet_mask,
            router,
        })
    }

    /// Size on the wire (used for airtime accounting).
    ///
    /// Computed arithmetically — no encode, no allocation. Fixed cost is
    /// the 236-byte BOOTP header, the 4-byte magic cookie, the 3-byte
    /// message-type option and the END byte; each present optional option
    /// adds its 6-byte TLV. A property test pins `wire_len()` to
    /// `encode().len()` over generated messages.
    pub fn wire_len(&self) -> usize {
        let optional = [
            self.requested_ip.is_some(),
            self.server_id.is_some(),
            self.lease_secs.is_some(),
            self.subnet_mask.is_some(),
            self.router.is_some(),
        ]
        .iter()
        .filter(|&&p| p)
        .count();
        236 + 4 + 3 + 6 * optional + 1
    }
}

fn take_ip(buf: &mut Reader<'_>) -> Result<Ipv4Addr, DhcpError> {
    let mut o = [0u8; 4];
    buf.read_exact(&mut o)?;
    Ok(Ipv4Addr::from(o))
}

fn ip_from(payload: &[u8]) -> Result<Ipv4Addr, DhcpError> {
    if payload.len() != 4 {
        return Err(DhcpError::BadOption);
    }
    Ok(Ipv4Addr::new(
        payload[0], payload[1], payload[2], payload[3],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH: [u8; 6] = [2, 0, 0, 0, 0, 1];
    const SRV: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 42);

    fn roundtrip(m: &DhcpMessage) -> DhcpMessage {
        DhcpMessage::decode(&m.encode()).expect("decode of encoded message")
    }

    #[test]
    fn discover_roundtrip() {
        let m = DhcpMessage::discover(0xDEAD_BEEF, CH);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn offer_roundtrip_keeps_lease_and_server() {
        let m = DhcpMessage::offer(1, CH, IP, SRV, 3600);
        let d = roundtrip(&m);
        assert_eq!(d.yiaddr, IP);
        assert_eq!(d.server_id, Some(SRV));
        assert_eq!(d.lease_secs, Some(3600));
        assert_eq!(d, m);
    }

    #[test]
    fn request_ack_nak_release_roundtrip() {
        for m in [
            DhcpMessage::request(2, CH, IP, SRV),
            DhcpMessage::ack(2, CH, IP, SRV, 600),
            DhcpMessage::nak(2, CH, SRV),
            DhcpMessage::release(3, CH, IP, SRV),
        ] {
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn wire_len_is_bootp_sized() {
        let m = DhcpMessage::discover(1, CH);
        // 236 header + 4 cookie + 3 msg-type + 1 end = 244.
        assert_eq!(m.wire_len(), 244);
        let full = DhcpMessage::ack(1, CH, IP, SRV, 60);
        assert!(full.wire_len() > m.wire_len());
    }

    #[test]
    fn truncated_fails_cleanly() {
        let bytes = DhcpMessage::discover(1, CH).encode();
        assert_eq!(
            DhcpMessage::decode(&bytes[..200]),
            Err(DhcpError::Truncated)
        );
        assert_eq!(DhcpMessage::decode(&[]), Err(DhcpError::Truncated));
    }

    #[test]
    fn bad_cookie_rejected() {
        let mut bytes = DhcpMessage::discover(1, CH).encode().to_vec();
        bytes[236] ^= 0xFF;
        assert_eq!(DhcpMessage::decode(&bytes), Err(DhcpError::BadCookie));
    }

    #[test]
    fn missing_msg_type_rejected() {
        let mut bytes = DhcpMessage::discover(1, CH).encode().to_vec();
        // Overwrite the msg-type option with pad bytes.
        bytes[240] = OPT_PAD;
        bytes[241] = OPT_PAD;
        bytes[242] = OPT_PAD;
        assert_eq!(DhcpMessage::decode(&bytes), Err(DhcpError::BadMessageType));
    }

    #[test]
    fn unknown_options_skipped() {
        let mut bytes = DhcpMessage::discover(7, CH).encode().to_vec();
        // Replace END with an unknown option then END.
        let end = bytes.len() - 1;
        bytes[end] = 42; // unknown code
        bytes.push(2); // len
        bytes.push(0xAA);
        bytes.push(0xBB);
        bytes.push(OPT_END);
        let d = DhcpMessage::decode(&bytes).unwrap();
        assert_eq!(d.xid, 7);
        assert_eq!(d.msg_type, MessageType::Discover);
    }

    #[test]
    fn overrunning_option_rejected() {
        let mut bytes = DhcpMessage::discover(7, CH).encode().to_vec();
        let end = bytes.len() - 1;
        bytes[end] = 50; // requested-ip
        bytes.push(200); // claims 200 bytes, buffer has none
        assert_eq!(DhcpMessage::decode(&bytes), Err(DhcpError::BadOption));
    }

    #[test]
    fn xid_and_chaddr_echoed() {
        let m = DhcpMessage::ack(0x1234_5678, CH, IP, SRV, 60);
        let d = roundtrip(&m);
        assert_eq!(d.xid, 0x1234_5678);
        assert_eq!(d.chaddr, CH);
        assert_eq!(d.op, OP_REPLY);
    }
}
