//! DHCP client state machine.
//!
//! This is the protocol the paper singles out as the obstacle to virtualized
//! Wi-Fi on the move: the join "cannot be buffered using a PSM request", so
//! every DISCOVER/OFFER/REQUEST/ACK message that lands while the radio is
//! off-channel is simply lost, and recovery is governed by *timers the
//! client controls* (retransmit) and *delays the server controls* (the
//! paper's `β`).
//!
//! Timer policy follows §2.2.1 and §4.5:
//!
//! * **Default** stock behaviour: 1 s per-message retransmit, try for 3 s,
//!   then go idle for 60 s ("the client attempts to acquire a lease for 3
//!   seconds, and it is idle for 60 seconds if it fails").
//! * **Reduced** timeouts à la Cabernet: 100–600 ms retransmit, no idle
//!   penalty — faster joins, but Table 3 shows the failure rate roughly
//!   doubles.
//!
//! The client also supports Spider's **lease cache** shortcut: rejoining an
//! AP whose lease is still valid skips DISCOVER/OFFER and goes straight to
//! REQUEST (INIT-REBOOT), halving the message count.

use std::net::Ipv4Addr;

use sim_engine::time::{Duration, Instant};

use crate::message::{DhcpMessage, MessageType};

/// Client timer policy.
#[derive(Debug, Clone)]
pub struct DhcpClientConfig {
    /// Per-message retransmission timeout.
    pub retx_timeout: Duration,
    /// Total time budget for one acquisition attempt.
    pub attempt_budget: Duration,
    /// Cooldown after a failed attempt before the next may start.
    pub idle_after_fail: Duration,
}

impl Default for DhcpClientConfig {
    /// The stock configuration the paper calls "default timers".
    fn default() -> Self {
        DhcpClientConfig {
            retx_timeout: Duration::from_secs(1),
            attempt_budget: Duration::from_secs(3),
            idle_after_fail: Duration::from_secs(60),
        }
    }
}

impl DhcpClientConfig {
    /// A reduced-timeout configuration (paper studies 100–600 ms per
    /// message). The 3 s acquisition window stays; what the reduction
    /// removes is the per-message dwell and the 60 s idle-on-fail penalty.
    pub fn reduced(retx: Duration) -> Self {
        DhcpClientConfig {
            retx_timeout: retx,
            attempt_budget: Duration::from_secs(3),
            idle_after_fail: Duration::ZERO,
        }
    }
}

/// A granted (or cached) lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The address granted to this client.
    pub ip: Ipv4Addr,
    /// The granting server.
    pub server: Ipv4Addr,
    /// Expiry instant.
    pub expires: Instant,
}

impl Lease {
    /// True if the lease is still valid at `now`.
    pub fn is_valid(&self, now: Instant) -> bool {
        now < self.expires
    }
}

/// Output of the client machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhcpAction {
    /// Transmit this message toward the AP's DHCP server.
    Send(DhcpMessage),
    /// Arm the retransmit timer; call [`DhcpClient::handle_timer`] with
    /// `token` after `after`. Stale tokens are ignored by the machine.
    ArmTimer {
        /// Delay until expiry.
        after: Duration,
        /// Generation token.
        token: u64,
    },
    /// Acquisition succeeded.
    Bound(Lease),
    /// Acquisition failed (budget exhausted or NAK); the machine is idle
    /// until [`DhcpClient::earliest_restart`].
    Failed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    /// DISCOVER sent, waiting for OFFER.
    Selecting,
    /// REQUEST sent for a fresh offer, waiting for ACK.
    Requesting {
        ip: Ipv4Addr,
        server: Ipv4Addr,
    },
    /// INIT-REBOOT REQUEST sent from a cached lease, waiting for ACK.
    Rebooting {
        ip: Ipv4Addr,
        server: Ipv4Addr,
    },
    Bound,
    /// Bound, with a unicast renewal REQUEST in flight (RFC 2131 T1/T2):
    /// the lease stays usable while renewing.
    Renewing {
        ip: Ipv4Addr,
        server: Ipv4Addr,
    },
    Failed,
}

/// The DHCP client for one virtual interface.
#[derive(Debug, Clone)]
pub struct DhcpClient {
    config: DhcpClientConfig,
    chaddr: [u8; 6],
    state: State,
    xid: u32,
    timer_gen: u64,
    attempt_started: Option<Instant>,
    cooldown_until: Instant,
    lease: Option<Lease>,
    /// When the current lease was granted (for T1 computation).
    bound_at: Option<Instant>,
}

impl DhcpClient {
    /// New idle client for the interface with hardware address `chaddr`.
    /// `xid_seed` makes transaction ids deterministic per interface.
    pub fn new(config: DhcpClientConfig, chaddr: [u8; 6], xid_seed: u32) -> DhcpClient {
        DhcpClient {
            config,
            chaddr,
            state: State::Idle,
            xid: xid_seed,
            timer_gen: 0,
            attempt_started: None,
            cooldown_until: Instant::ZERO,
            lease: None,
            bound_at: None,
        }
    }

    /// The active lease, if bound (renewal in flight still counts: the
    /// current lease remains valid until it expires).
    pub fn lease(&self) -> Option<Lease> {
        if self.is_bound() {
            self.lease
        } else {
            None
        }
    }

    /// True once bound (including while a renewal is in flight).
    pub fn is_bound(&self) -> bool {
        matches!(self.state, State::Bound | State::Renewing { .. })
    }

    /// RFC 2131's T1: the instant at which a bound client should start
    /// renewing — halfway through the lease.
    pub fn renewal_due(&self) -> Option<Instant> {
        let lease = self.lease?;
        let granted = self.bound_at?;
        Some(granted + lease.expires.saturating_since(granted) / 2)
    }

    /// Begin a T1 renewal: a unicast REQUEST for the current address. The
    /// lease stays usable; an ACK extends it, a NAK drops to Idle (the
    /// address must no longer be used), timer expiries retransmit until
    /// the lease itself expires.
    ///
    /// Returns nothing if the client is not plainly bound.
    pub fn start_renewal(&mut self, now: Instant) -> Vec<DhcpAction> {
        let (State::Bound, Some(lease)) = (self.state, self.lease) else {
            return Vec::new();
        };
        if !lease.is_valid(now) {
            // Too late: the lease lapsed; fall back to idle.
            self.state = State::Idle;
            self.timer_gen += 1;
            return vec![DhcpAction::Failed];
        }
        self.state = State::Renewing {
            ip: lease.ip,
            server: lease.server,
        };
        self.attempt_started = Some(now);
        let xid = self.next_xid();
        let mut req = DhcpMessage::request(xid, self.chaddr, lease.ip, lease.server);
        // RENEWING state: unicast to the leasing server, ciaddr filled,
        // no server-id option (RFC 2131 §4.3.2).
        req.ciaddr = lease.ip;
        req.server_id = None;
        vec![DhcpAction::Send(req), self.arm()]
    }

    /// True while an acquisition is in flight.
    pub fn is_acquiring(&self) -> bool {
        matches!(
            self.state,
            State::Selecting | State::Requesting { .. } | State::Rebooting { .. }
        )
    }

    /// True while a renewal is in flight.
    pub fn is_renewing(&self) -> bool {
        matches!(self.state, State::Renewing { .. })
    }

    /// Earliest instant a new attempt may start (cooldown after failure).
    pub fn earliest_restart(&self) -> Instant {
        self.cooldown_until
    }

    /// When the in-flight attempt started (for join-time measurement).
    pub fn attempt_started_at(&self) -> Option<Instant> {
        self.attempt_started
    }

    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    fn arm(&mut self) -> DhcpAction {
        self.timer_gen += 1;
        DhcpAction::ArmTimer {
            after: self.config.retx_timeout,
            token: self.timer_gen,
        }
    }

    fn secs_elapsed(&self, now: Instant) -> u16 {
        self.attempt_started
            .map(|t| now.saturating_since(t).as_secs().min(u16::MAX as u64) as u16)
            .unwrap_or(0)
    }

    /// Begin an acquisition at `now`. If `cached` holds a still-valid lease
    /// for this AP, the client skips to INIT-REBOOT.
    ///
    /// # Panics
    /// Panics if called while bound or mid-acquisition, or during cooldown.
    pub fn start(&mut self, now: Instant, cached: Option<Lease>) -> Vec<DhcpAction> {
        assert!(
            matches!(self.state, State::Idle | State::Failed),
            "DhcpClient::start in state {:?}",
            self.state
        );
        assert!(
            now >= self.cooldown_until,
            "DhcpClient::start during cooldown (until {})",
            self.cooldown_until
        );
        self.attempt_started = Some(now);
        let xid = self.next_xid();
        match cached.filter(|l| l.is_valid(now)) {
            Some(lease) => {
                self.state = State::Rebooting {
                    ip: lease.ip,
                    server: lease.server,
                };
                let mut req = DhcpMessage::request(xid, self.chaddr, lease.ip, lease.server);
                req.server_id = None; // INIT-REBOOT carries no server id
                vec![DhcpAction::Send(req), self.arm()]
            }
            None => {
                self.state = State::Selecting;
                let d = DhcpMessage::discover(xid, self.chaddr);
                vec![DhcpAction::Send(d), self.arm()]
            }
        }
    }

    /// Release the bound lease (when leaving an AP gracefully). Returns the
    /// RELEASE message to transmit, if there was a lease.
    pub fn release(&mut self) -> Vec<DhcpAction> {
        let out = match (self.state, self.lease) {
            (State::Bound, Some(lease)) => {
                let xid = self.next_xid();
                vec![DhcpAction::Send(DhcpMessage::release(
                    xid,
                    self.chaddr,
                    lease.ip,
                    lease.server,
                ))]
            }
            _ => Vec::new(),
        };
        self.state = State::Idle;
        self.timer_gen += 1;
        self.attempt_started = None;
        out
    }

    /// Abandon any in-flight acquisition without the failure cooldown
    /// (e.g. the AP left range; there is no point penalizing ourselves).
    pub fn abort(&mut self) {
        if self.is_acquiring() {
            self.state = State::Idle;
            self.timer_gen += 1;
            self.attempt_started = None;
        }
    }

    /// Feed a received DHCP message at `now`.
    pub fn handle_message(&mut self, msg: &DhcpMessage, now: Instant) -> Vec<DhcpAction> {
        if msg.chaddr != self.chaddr || msg.xid != self.xid {
            return Vec::new();
        }
        match (self.state, msg.msg_type) {
            (State::Selecting, MessageType::Offer) => {
                let Some(server) = msg.server_id else {
                    return Vec::new();
                };
                let ip = msg.yiaddr;
                self.state = State::Requesting { ip, server };
                // Same transaction: REQUEST reuses the xid per RFC 2131.
                let req = DhcpMessage::request(self.xid, self.chaddr, ip, server);
                vec![DhcpAction::Send(req), self.arm()]
            }
            (State::Requesting { ip, server }, MessageType::Ack)
            | (State::Rebooting { ip, server }, MessageType::Ack)
            | (State::Renewing { ip, server }, MessageType::Ack) => {
                let lease_secs = msg.lease_secs.unwrap_or(3600);
                let lease = Lease {
                    ip,
                    server,
                    expires: now + Duration::from_secs(lease_secs as u64),
                };
                self.lease = Some(lease);
                self.bound_at = Some(now);
                self.state = State::Bound;
                self.timer_gen += 1;
                vec![DhcpAction::Bound(lease)]
            }
            (State::Rebooting { .. }, MessageType::Nak) => {
                // Cached lease no longer honoured: fall back to a full
                // acquisition within the same attempt budget.
                self.state = State::Selecting;
                let xid = self.next_xid();
                let d = DhcpMessage::discover(xid, self.chaddr);
                vec![DhcpAction::Send(d), self.arm()]
            }
            (State::Requesting { .. }, MessageType::Nak) => self.fail(now),
            (State::Renewing { .. }, MessageType::Nak) => {
                // The server revoked the address: stop using it at once.
                self.lease = None;
                self.state = State::Idle;
                self.timer_gen += 1;
                self.attempt_started = None;
                vec![DhcpAction::Failed]
            }
            _ => Vec::new(),
        }
    }

    /// Feed a retransmit-timer expiry. Stale tokens are ignored.
    pub fn handle_timer(&mut self, token: u64, now: Instant) -> Vec<DhcpAction> {
        if token == self.timer_gen {
            if let State::Renewing { ip, server } = self.state {
                // Renewal retransmits until the lease itself expires, then
                // the address must be dropped.
                let lease_live = self.lease.is_some_and(|l| l.is_valid(now));
                if !lease_live {
                    self.lease = None;
                    self.state = State::Idle;
                    self.timer_gen += 1;
                    self.attempt_started = None;
                    return vec![DhcpAction::Failed];
                }
                let mut req = DhcpMessage::request(self.xid, self.chaddr, ip, server);
                req.ciaddr = ip;
                req.server_id = None;
                req.secs = self.secs_elapsed(now);
                return vec![DhcpAction::Send(req), self.arm()];
            }
        }
        if token != self.timer_gen || !self.is_acquiring() {
            return Vec::new();
        }
        // `is_acquiring()` implies an attempt start was recorded; if the
        // state machine ever breaks that, treat the timer as stale.
        let Some(started) = self.attempt_started else {
            return Vec::new();
        };
        if now.saturating_since(started) >= self.config.attempt_budget {
            return self.fail(now);
        }
        // Retransmit the message for the current phase.
        let mut msg = match self.state {
            State::Selecting => DhcpMessage::discover(self.xid, self.chaddr),
            State::Requesting { ip, server } => {
                DhcpMessage::request(self.xid, self.chaddr, ip, server)
            }
            State::Rebooting { ip, server } => {
                let mut m = DhcpMessage::request(self.xid, self.chaddr, ip, server);
                m.server_id = None;
                m
            }
            _ => unreachable!("is_acquiring checked above"),
        };
        msg.secs = self.secs_elapsed(now);
        vec![DhcpAction::Send(msg), self.arm()]
    }

    fn fail(&mut self, now: Instant) -> Vec<DhcpAction> {
        self.state = State::Failed;
        self.timer_gen += 1;
        self.attempt_started = None;
        self.cooldown_until = now + self.config.idle_after_fail;
        vec![DhcpAction::Failed]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH: [u8; 6] = [2, 0, 0, 0, 0, 9];
    const SRV: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 1);
    const IP: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 77);

    fn client(cfg: DhcpClientConfig) -> DhcpClient {
        DhcpClient::new(cfg, CH, 100)
    }

    fn sent_xid(actions: &[DhcpAction]) -> u32 {
        match &actions[0] {
            DhcpAction::Send(m) => m.xid,
            other => panic!("expected Send, got {other:?}"),
        }
    }

    #[test]
    fn full_acquisition_happy_path() {
        let mut c = client(DhcpClientConfig::default());
        let t0 = Instant::ZERO;
        let acts = c.start(t0, None);
        let xid = sent_xid(&acts);
        assert!(matches!(&acts[0], DhcpAction::Send(m) if m.msg_type == MessageType::Discover));

        let offer = DhcpMessage::offer(xid, CH, IP, SRV, 600);
        let acts = c.handle_message(&offer, t0 + Duration::from_millis(200));
        assert!(matches!(&acts[0], DhcpAction::Send(m) if m.msg_type == MessageType::Request));
        assert_eq!(sent_xid(&acts), xid, "REQUEST reuses the transaction id");

        let ack = DhcpMessage::ack(xid, CH, IP, SRV, 600);
        let t_ack = t0 + Duration::from_millis(400);
        let acts = c.handle_message(&ack, t_ack);
        match &acts[0] {
            DhcpAction::Bound(lease) => {
                assert_eq!(lease.ip, IP);
                assert_eq!(lease.server, SRV);
                assert_eq!(lease.expires, t_ack + Duration::from_secs(600));
            }
            other => panic!("{other:?}"),
        }
        assert!(c.is_bound());
        assert_eq!(c.lease().unwrap().ip, IP);
    }

    #[test]
    fn cached_lease_goes_straight_to_request() {
        let mut c = client(DhcpClientConfig::default());
        let lease = Lease {
            ip: IP,
            server: SRV,
            expires: Instant::from_secs(100),
        };
        let acts = c.start(Instant::ZERO, Some(lease));
        match &acts[0] {
            DhcpAction::Send(m) => {
                assert_eq!(m.msg_type, MessageType::Request);
                assert_eq!(m.requested_ip, Some(IP));
                assert_eq!(m.server_id, None, "INIT-REBOOT carries no server id");
            }
            other => panic!("{other:?}"),
        }
        // ACK binds directly.
        let xid = sent_xid(&acts);
        let ack = DhcpMessage::ack(xid, CH, IP, SRV, 600);
        let acts = c.handle_message(&ack, Instant::from_millis(100));
        assert!(matches!(acts[0], DhcpAction::Bound(_)));
    }

    #[test]
    fn expired_cache_ignored() {
        let mut c = client(DhcpClientConfig::default());
        let stale = Lease {
            ip: IP,
            server: SRV,
            expires: Instant::from_secs(1),
        };
        let acts = c.start(Instant::from_secs(5), Some(stale));
        assert!(matches!(&acts[0], DhcpAction::Send(m) if m.msg_type == MessageType::Discover));
    }

    #[test]
    fn nak_on_reboot_falls_back_to_discover() {
        let mut c = client(DhcpClientConfig::default());
        let lease = Lease {
            ip: IP,
            server: SRV,
            expires: Instant::from_secs(100),
        };
        let acts = c.start(Instant::ZERO, Some(lease));
        let xid = sent_xid(&acts);
        let nak = DhcpMessage::nak(xid, CH, SRV);
        let acts = c.handle_message(&nak, Instant::from_millis(50));
        assert!(matches!(&acts[0], DhcpAction::Send(m) if m.msg_type == MessageType::Discover));
        assert!(c.is_acquiring());
    }

    #[test]
    fn retransmits_until_budget_then_fails_with_cooldown() {
        let cfg = DhcpClientConfig::default(); // 1 s retx, 3 s budget, 60 s idle
        let mut c = client(cfg);
        let t0 = Instant::ZERO;
        let acts = c.start(t0, None);
        let mut token = match acts[1] {
            DhcpAction::ArmTimer { token, .. } => token,
            _ => panic!(),
        };
        let mut now = t0;
        let mut retransmits = 0;
        loop {
            now += Duration::from_secs(1);
            let acts = c.handle_timer(token, now);
            match &acts[0] {
                DhcpAction::Send(m) => {
                    assert_eq!(m.msg_type, MessageType::Discover);
                    assert_eq!(m.secs as u64, now.as_nanos() / 1_000_000_000);
                    retransmits += 1;
                    token = match acts[1] {
                        DhcpAction::ArmTimer { token, .. } => token,
                        _ => panic!(),
                    };
                }
                DhcpAction::Failed => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(retransmits, 2, "1 s and 2 s retransmit; 3 s expiry fails");
        assert_eq!(c.earliest_restart(), now + Duration::from_secs(60));
    }

    #[test]
    #[should_panic(expected = "during cooldown")]
    fn restart_during_cooldown_panics() {
        let mut c = client(DhcpClientConfig::default());
        c.start(Instant::ZERO, None);
        // Force failure via timer expiries.
        let mut now = Instant::ZERO;
        for token in 1..=3 {
            now += Duration::from_secs(1);
            c.handle_timer(token, now);
        }
        c.start(now + Duration::from_secs(1), None); // < 60 s cooldown
    }

    #[test]
    fn reduced_config_has_no_cooldown() {
        let mut c = client(DhcpClientConfig::reduced(Duration::from_millis(100)));
        c.start(Instant::ZERO, None);
        let mut now = Instant::ZERO;
        let mut token = 1;
        loop {
            now += Duration::from_millis(100);
            let acts = c.handle_timer(token, now);
            if matches!(acts.first(), Some(DhcpAction::Failed)) {
                break;
            }
            token = match acts.get(1) {
                Some(DhcpAction::ArmTimer { token, .. }) => *token,
                _ => panic!("expected rearm"),
            };
        }
        // May restart immediately.
        let acts = c.start(now, None);
        assert!(!acts.is_empty());
    }

    #[test]
    fn stale_timer_ignored_after_bind() {
        let mut c = client(DhcpClientConfig::default());
        let acts = c.start(Instant::ZERO, None);
        let xid = sent_xid(&acts);
        let offer = DhcpMessage::offer(xid, CH, IP, SRV, 60);
        c.handle_message(&offer, Instant::from_millis(10));
        let ack = DhcpMessage::ack(xid, CH, IP, SRV, 60);
        c.handle_message(&ack, Instant::from_millis(20));
        // Original discover timer fires late: nothing happens.
        assert!(c.handle_timer(1, Instant::from_secs(1)).is_empty());
        assert!(c.is_bound());
    }

    #[test]
    fn wrong_xid_or_chaddr_ignored() {
        let mut c = client(DhcpClientConfig::default());
        let acts = c.start(Instant::ZERO, None);
        let xid = sent_xid(&acts);
        let wrong_xid = DhcpMessage::offer(xid + 1, CH, IP, SRV, 60);
        assert!(c.handle_message(&wrong_xid, Instant::ZERO).is_empty());
        let mut wrong_ch = DhcpMessage::offer(xid, CH, IP, SRV, 60);
        wrong_ch.chaddr = [9; 6];
        assert!(c.handle_message(&wrong_ch, Instant::ZERO).is_empty());
        assert!(c.is_acquiring());
    }

    #[test]
    fn release_emits_message_and_resets() {
        let mut c = client(DhcpClientConfig::default());
        let acts = c.start(Instant::ZERO, None);
        let xid = sent_xid(&acts);
        c.handle_message(&DhcpMessage::offer(xid, CH, IP, SRV, 60), Instant::ZERO);
        c.handle_message(&DhcpMessage::ack(xid, CH, IP, SRV, 60), Instant::ZERO);
        let acts = c.release();
        assert!(matches!(&acts[0], DhcpAction::Send(m) if m.msg_type == MessageType::Release));
        assert!(!c.is_bound());
        assert!(c.lease().is_none());
    }

    #[test]
    fn abort_skips_cooldown() {
        let mut c = client(DhcpClientConfig::default());
        c.start(Instant::ZERO, None);
        c.abort();
        assert!(!c.is_acquiring());
        // Immediately restartable — no cooldown from an abort.
        let acts = c.start(Instant::from_millis(1), None);
        assert!(!acts.is_empty());
    }

    /// Bind a client via the full exchange; returns the granted lease.
    fn bind(c: &mut DhcpClient, t0: Instant) -> Lease {
        let acts = c.start(t0, None);
        let xid = sent_xid(&acts);
        c.handle_message(&DhcpMessage::offer(xid, CH, IP, SRV, 600), t0);
        let acts = c.handle_message(&DhcpMessage::ack(xid, CH, IP, SRV, 600), t0);
        match acts[0] {
            DhcpAction::Bound(l) => l,
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn renewal_due_is_half_the_lease() {
        let mut c = client(DhcpClientConfig::default());
        let t0 = Instant::from_secs(10);
        bind(&mut c, t0);
        // 600 s lease granted at t = 10 s → T1 at 310 s.
        assert_eq!(c.renewal_due(), Some(Instant::from_secs(310)));
    }

    #[test]
    fn renewal_ack_extends_the_lease() {
        let mut c = client(DhcpClientConfig::default());
        let t0 = Instant::ZERO;
        let lease = bind(&mut c, t0);
        let t1 = Instant::from_secs(300);
        let acts = c.start_renewal(t1);
        match &acts[0] {
            DhcpAction::Send(m) => {
                assert_eq!(m.msg_type, MessageType::Request);
                assert_eq!(m.ciaddr, IP, "renewal carries ciaddr");
                assert_eq!(m.server_id, None, "renewal omits server-id");
            }
            other => panic!("{other:?}"),
        }
        assert!(c.is_renewing());
        assert!(c.is_bound(), "lease stays usable during renewal");
        let xid = sent_xid(&acts);
        let acts = c.handle_message(&DhcpMessage::ack(xid, CH, IP, SRV, 600), t1);
        match acts[0] {
            DhcpAction::Bound(renewed) => {
                assert!(renewed.expires > lease.expires, "lease must extend");
            }
            ref other => panic!("{other:?}"),
        }
        assert!(!c.is_renewing());
    }

    #[test]
    fn renewal_nak_revokes_the_address() {
        let mut c = client(DhcpClientConfig::default());
        bind(&mut c, Instant::ZERO);
        let acts = c.start_renewal(Instant::from_secs(300));
        let xid = sent_xid(&acts);
        let acts = c.handle_message(&DhcpMessage::nak(xid, CH, SRV), Instant::from_secs(301));
        assert_eq!(acts, vec![DhcpAction::Failed]);
        assert!(!c.is_bound());
        assert!(c.lease().is_none());
    }

    #[test]
    fn renewal_retransmits_until_lease_expiry() {
        let mut c = client(DhcpClientConfig::default());
        bind(&mut c, Instant::ZERO); // expires at 600 s
        let acts = c.start_renewal(Instant::from_secs(300));
        let mut token = match acts[1] {
            DhcpAction::ArmTimer { token, .. } => token,
            _ => panic!(),
        };
        // Retransmits while the lease lives…
        let acts = c.handle_timer(token, Instant::from_secs(400));
        assert!(matches!(&acts[0], DhcpAction::Send(m) if m.msg_type == MessageType::Request));
        token = match acts[1] {
            DhcpAction::ArmTimer { token, .. } => token,
            _ => panic!(),
        };
        // …and gives up the address once it lapses.
        let acts = c.handle_timer(token, Instant::from_secs(601));
        assert_eq!(acts, vec![DhcpAction::Failed]);
        assert!(!c.is_bound());
    }

    #[test]
    fn duplicate_offer_after_request_ignored() {
        let mut c = client(DhcpClientConfig::default());
        let acts = c.start(Instant::ZERO, None);
        let xid = sent_xid(&acts);
        let offer = DhcpMessage::offer(xid, CH, IP, SRV, 60);
        c.handle_message(&offer, Instant::ZERO);
        assert!(c.handle_message(&offer, Instant::ZERO).is_empty());
    }
}
