//! DHCP server: the AP-side lease machinery and — critically — its
//! **response delay**.
//!
//! The paper's join model abstracts the AP's end-to-end responsiveness as
//! `β ∈ [βmin, βmax]` (500 ms to 5–10 s in its parameterization): "the time
//! to complete the dhcp process is controlled by the AP rather than the
//! client". Consumer APs run DHCP on slow SoCs, often relaying to an ISP
//! backend, so multi-second worst cases are realistic. [`DhcpServerConfig`]
//! models that as a uniform per-response delay, giving experiments direct
//! control of the paper's key parameter.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use sim_engine::rng::Rng;
use sim_engine::time::{Duration, Instant};

use crate::message::{DhcpMessage, MessageType};

/// Server parameters.
#[derive(Debug, Clone)]
pub struct DhcpServerConfig {
    /// The server's own address (also handed out as the router).
    pub server_ip: Ipv4Addr,
    /// First assignable host address. Addresses are handed out sequentially
    /// from here within the /24 of `server_ip`.
    pub pool_start: u8,
    /// Number of assignable addresses.
    pub pool_size: usize,
    /// Lease duration granted.
    pub lease: Duration,
    /// Minimum per-response processing delay (β floor).
    pub delay_min: Duration,
    /// Maximum per-response processing delay (β ceiling, exclusive).
    pub delay_max: Duration,
    /// Probability the server silently ignores a request (overloaded relay,
    /// rate limiting). 0 by default.
    pub ignore_prob: f64,
}

impl DhcpServerConfig {
    /// A typical AP-embedded server for AP number `id`: /24 pool, 1-hour
    /// leases, response delay `[delay_min, delay_max)`.
    pub fn for_ap(id: u32, delay_min: Duration, delay_max: Duration) -> DhcpServerConfig {
        DhcpServerConfig {
            // Each AP gets its own 10.x.y.1 subnet; x.y from the id.
            server_ip: Ipv4Addr::new(10, (id >> 8) as u8, id as u8, 1),
            pool_start: 100,
            pool_size: 100,
            lease: Duration::from_secs(3600),
            delay_min,
            delay_max,
            ignore_prob: 0.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LeaseEntry {
    ip: Ipv4Addr,
    expires: Instant,
}

/// Server-side counters for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// OFFERs sent.
    pub offers: u64,
    /// ACKs sent.
    pub acks: u64,
    /// NAKs sent.
    pub naks: u64,
    /// Requests silently ignored (by `ignore_prob` or pool exhaustion).
    pub ignored: u64,
}

/// The DHCP server embedded in one AP.
#[derive(Debug, Clone)]
pub struct DhcpServer {
    config: DhcpServerConfig,
    leases: BTreeMap<[u8; 6], LeaseEntry>,
    next_offset: usize,
    counters: ServerCounters,
}

impl DhcpServer {
    /// A fresh server with an empty lease table.
    pub fn new(config: DhcpServerConfig) -> DhcpServer {
        DhcpServer {
            config,
            leases: BTreeMap::new(),
            next_offset: 0,
            counters: ServerCounters::default(),
        }
    }

    /// Server configuration.
    pub fn config(&self) -> &DhcpServerConfig {
        &self.config
    }

    /// Counters.
    pub fn counters(&self) -> ServerCounters {
        self.counters
    }

    /// Number of live leases at `now`.
    pub fn live_leases(&self, now: Instant) -> usize {
        self.leases.values().filter(|l| l.expires > now).count()
    }

    fn addr_at(&self, offset: usize) -> Ipv4Addr {
        let base = self.config.server_ip.octets();
        Ipv4Addr::new(
            base[0],
            base[1],
            base[2],
            self.config.pool_start.wrapping_add(offset as u8),
        )
    }

    /// Find (or allocate) the address for `chaddr`. Stable: a returning
    /// client gets its previous address while the lease lives, which is
    /// what makes the client-side lease cache effective.
    fn allocate(&mut self, chaddr: [u8; 6], now: Instant) -> Option<Ipv4Addr> {
        if let Some(entry) = self.leases.get(&chaddr) {
            if entry.expires > now {
                return Some(entry.ip);
            }
        }
        // Reclaim expired entries lazily.
        self.leases.retain(|_, l| l.expires > now);
        if self.leases.len() >= self.config.pool_size {
            return None;
        }
        // Next free offset (linear probe; pool is small).
        for _ in 0..self.config.pool_size {
            let candidate = self.addr_at(self.next_offset % self.config.pool_size);
            self.next_offset += 1;
            if !self.leases.values().any(|l| l.ip == candidate) {
                return Some(candidate);
            }
        }
        None
    }

    fn delay(&self, rng: &mut Rng) -> Duration {
        if self.config.delay_max <= self.config.delay_min {
            self.config.delay_min
        } else {
            rng.duration_between(self.config.delay_min, self.config.delay_max)
        }
    }

    /// Process a client message at `now`. Returns the reply and the delay
    /// after which it leaves the server, or `None` when the server stays
    /// silent (ignored, pool exhausted, RELEASE).
    pub fn on_message(
        &mut self,
        msg: &DhcpMessage,
        now: Instant,
        rng: &mut Rng,
    ) -> Option<(Duration, DhcpMessage)> {
        match msg.msg_type {
            MessageType::Discover => {
                if rng.chance(self.config.ignore_prob) {
                    self.counters.ignored += 1;
                    return None;
                }
                let Some(ip) = self.allocate(msg.chaddr, now) else {
                    self.counters.ignored += 1;
                    return None;
                };
                // The offer provisionally reserves the address.
                self.leases.insert(
                    msg.chaddr,
                    LeaseEntry {
                        ip,
                        expires: now + Duration::from_secs(30),
                    },
                );
                self.counters.offers += 1;
                let reply = DhcpMessage::offer(
                    msg.xid,
                    msg.chaddr,
                    ip,
                    self.config.server_ip,
                    self.config.lease.as_secs() as u32,
                );
                Some((self.delay(rng), reply))
            }
            MessageType::Request => {
                if rng.chance(self.config.ignore_prob) {
                    self.counters.ignored += 1;
                    return None;
                }
                // A REQUEST selecting another server: forget any reservation.
                if let Some(server) = msg.server_id {
                    if server != self.config.server_ip {
                        self.leases.remove(&msg.chaddr);
                        return None;
                    }
                }
                let Some(requested) = msg.requested_ip else {
                    let reply = DhcpMessage::nak(msg.xid, msg.chaddr, self.config.server_ip);
                    self.counters.naks += 1;
                    return Some((self.delay(rng), reply));
                };
                let honour = match self.leases.get(&msg.chaddr) {
                    // Known client: honour iff it asks for its address.
                    Some(entry) => entry.ip == requested,
                    // INIT-REBOOT from an unknown client (e.g. the server
                    // rebooted or the reservation expired): honour iff the
                    // address is in our pool and free.
                    None => {
                        let in_pool = {
                            let base = self.config.server_ip.octets();
                            let o = requested.octets();
                            o[0] == base[0]
                                && o[1] == base[1]
                                && o[2] == base[2]
                                && o[3] >= self.config.pool_start
                                && (o[3] as usize)
                                    < self.config.pool_start as usize + self.config.pool_size
                        };
                        in_pool
                            && !self
                                .leases
                                .values()
                                .any(|l| l.ip == requested && l.expires > now)
                    }
                };
                if honour {
                    self.leases.insert(
                        msg.chaddr,
                        LeaseEntry {
                            ip: requested,
                            expires: now + self.config.lease,
                        },
                    );
                    self.counters.acks += 1;
                    let reply = DhcpMessage::ack(
                        msg.xid,
                        msg.chaddr,
                        requested,
                        self.config.server_ip,
                        self.config.lease.as_secs() as u32,
                    );
                    Some((self.delay(rng), reply))
                } else {
                    self.counters.naks += 1;
                    let reply = DhcpMessage::nak(msg.xid, msg.chaddr, self.config.server_ip);
                    Some((self.delay(rng), reply))
                }
            }
            MessageType::Release => {
                self.leases.remove(&msg.chaddr);
                None
            }
            // Server ignores server-originated types echoed back.
            MessageType::Offer | MessageType::Ack | MessageType::Nak => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH1: [u8; 6] = [2, 0, 0, 0, 0, 1];
    const CH2: [u8; 6] = [2, 0, 0, 0, 0, 2];

    fn server(delay_ms: (u64, u64)) -> DhcpServer {
        DhcpServer::new(DhcpServerConfig::for_ap(
            5,
            Duration::from_millis(delay_ms.0),
            Duration::from_millis(delay_ms.1),
        ))
    }

    #[test]
    fn discover_offer_request_ack_flow() {
        let mut s = server((100, 500));
        let mut rng = Rng::new(1);
        let now = Instant::ZERO;
        let (d1, offer) = s
            .on_message(&DhcpMessage::discover(1, CH1), now, &mut rng)
            .unwrap();
        assert!(d1 >= Duration::from_millis(100) && d1 < Duration::from_millis(500));
        assert_eq!(offer.msg_type, MessageType::Offer);
        let ip = offer.yiaddr;
        assert_eq!(ip.octets()[3], 100);

        let req = DhcpMessage::request(1, CH1, ip, offer.server_id.unwrap());
        let (_, ack) = s.on_message(&req, now + d1, &mut rng).unwrap();
        assert_eq!(ack.msg_type, MessageType::Ack);
        assert_eq!(ack.yiaddr, ip);
        assert_eq!(s.live_leases(now + d1), 1);
        assert_eq!(s.counters().acks, 1);
    }

    #[test]
    fn same_client_reoffered_same_address() {
        let mut s = server((1, 2));
        let mut rng = Rng::new(2);
        let (_, o1) = s
            .on_message(&DhcpMessage::discover(1, CH1), Instant::ZERO, &mut rng)
            .unwrap();
        let (_, o2) = s
            .on_message(
                &DhcpMessage::discover(2, CH1),
                Instant::from_secs(1),
                &mut rng,
            )
            .unwrap();
        assert_eq!(o1.yiaddr, o2.yiaddr);
    }

    #[test]
    fn distinct_clients_distinct_addresses() {
        let mut s = server((1, 2));
        let mut rng = Rng::new(3);
        let (_, o1) = s
            .on_message(&DhcpMessage::discover(1, CH1), Instant::ZERO, &mut rng)
            .unwrap();
        let (_, o2) = s
            .on_message(&DhcpMessage::discover(1, CH2), Instant::ZERO, &mut rng)
            .unwrap();
        assert_ne!(o1.yiaddr, o2.yiaddr);
    }

    #[test]
    fn request_for_wrong_address_nakked() {
        let mut s = server((1, 2));
        let mut rng = Rng::new(4);
        let (_, offer) = s
            .on_message(&DhcpMessage::discover(1, CH1), Instant::ZERO, &mut rng)
            .unwrap();
        let wrong = Ipv4Addr::new(10, 0, 5, 250);
        let req = DhcpMessage::request(1, CH1, wrong, offer.server_id.unwrap());
        let (_, reply) = s.on_message(&req, Instant::ZERO, &mut rng).unwrap();
        assert_eq!(reply.msg_type, MessageType::Nak);
    }

    #[test]
    fn init_reboot_honoured_for_free_pool_address() {
        let mut s = server((1, 2));
        let mut rng = Rng::new(5);
        // Unknown client asks for a pool address directly (cached lease).
        let ip = Ipv4Addr::new(10, 0, 5, 120);
        let mut req = DhcpMessage::request(9, CH1, ip, Ipv4Addr::new(10, 0, 5, 1));
        req.server_id = None;
        let (_, reply) = s.on_message(&req, Instant::ZERO, &mut rng).unwrap();
        assert_eq!(reply.msg_type, MessageType::Ack);
        assert_eq!(reply.yiaddr, ip);
    }

    #[test]
    fn init_reboot_for_foreign_subnet_nakked() {
        let mut s = server((1, 2));
        let mut rng = Rng::new(6);
        let mut req =
            DhcpMessage::request(9, CH1, Ipv4Addr::new(192, 168, 1, 5), Ipv4Addr::UNSPECIFIED);
        req.server_id = None;
        let (_, reply) = s.on_message(&req, Instant::ZERO, &mut rng).unwrap();
        assert_eq!(reply.msg_type, MessageType::Nak);
    }

    #[test]
    fn request_selecting_other_server_is_silent() {
        let mut s = server((1, 2));
        let mut rng = Rng::new(7);
        s.on_message(&DhcpMessage::discover(1, CH1), Instant::ZERO, &mut rng)
            .unwrap();
        let req = DhcpMessage::request(
            1,
            CH1,
            Ipv4Addr::new(10, 9, 9, 5),
            Ipv4Addr::new(10, 9, 9, 1),
        );
        assert!(s.on_message(&req, Instant::ZERO, &mut rng).is_none());
        // The provisional reservation was dropped.
        assert_eq!(s.live_leases(Instant::ZERO), 0);
    }

    #[test]
    fn pool_exhaustion_goes_silent() {
        let mut cfg =
            DhcpServerConfig::for_ap(1, Duration::from_millis(1), Duration::from_millis(2));
        cfg.pool_size = 2;
        let mut s = DhcpServer::new(cfg);
        let mut rng = Rng::new(8);
        for i in 0..2u8 {
            let ch = [2, 0, 0, 0, 1, i];
            assert!(s
                .on_message(&DhcpMessage::discover(1, ch), Instant::ZERO, &mut rng)
                .is_some());
        }
        let ch3 = [2, 0, 0, 0, 1, 9];
        assert!(s
            .on_message(&DhcpMessage::discover(1, ch3), Instant::ZERO, &mut rng)
            .is_none());
        assert_eq!(s.counters().ignored, 1);
    }

    #[test]
    fn expired_leases_reclaimed() {
        let mut cfg =
            DhcpServerConfig::for_ap(1, Duration::from_millis(1), Duration::from_millis(2));
        cfg.pool_size = 1;
        cfg.lease = Duration::from_secs(10);
        let mut s = DhcpServer::new(cfg);
        let mut rng = Rng::new(9);
        let (_, offer) = s
            .on_message(&DhcpMessage::discover(1, CH1), Instant::ZERO, &mut rng)
            .unwrap();
        let req = DhcpMessage::request(1, CH1, offer.yiaddr, offer.server_id.unwrap());
        s.on_message(&req, Instant::ZERO, &mut rng).unwrap();
        // Other client blocked while the lease lives…
        assert!(s
            .on_message(
                &DhcpMessage::discover(1, CH2),
                Instant::from_secs(5),
                &mut rng
            )
            .is_none());
        // …and served after expiry.
        let got = s.on_message(
            &DhcpMessage::discover(2, CH2),
            Instant::from_secs(11),
            &mut rng,
        );
        assert!(got.is_some());
    }

    #[test]
    fn release_frees_address() {
        let mut s = server((1, 2));
        let mut rng = Rng::new(10);
        let (_, offer) = s
            .on_message(&DhcpMessage::discover(1, CH1), Instant::ZERO, &mut rng)
            .unwrap();
        let req = DhcpMessage::request(1, CH1, offer.yiaddr, offer.server_id.unwrap());
        s.on_message(&req, Instant::ZERO, &mut rng).unwrap();
        assert_eq!(s.live_leases(Instant::ZERO), 1);
        let rel = DhcpMessage::release(2, CH1, offer.yiaddr, offer.server_id.unwrap());
        assert!(s.on_message(&rel, Instant::ZERO, &mut rng).is_none());
        assert_eq!(s.live_leases(Instant::ZERO), 0);
    }

    #[test]
    fn ignore_prob_one_never_answers() {
        let mut cfg =
            DhcpServerConfig::for_ap(1, Duration::from_millis(1), Duration::from_millis(2));
        cfg.ignore_prob = 1.0;
        let mut s = DhcpServer::new(cfg);
        let mut rng = Rng::new(11);
        assert!(s
            .on_message(&DhcpMessage::discover(1, CH1), Instant::ZERO, &mut rng)
            .is_none());
        assert_eq!(s.counters().ignored, 1);
    }

    #[test]
    fn delay_spans_configured_interval() {
        let mut s = server((500, 5000)); // the paper's βmin..βmax flavour
        let mut rng = Rng::new(12);
        let mut lo = Duration::MAX;
        let mut hi = Duration::ZERO;
        for xid in 0..200 {
            let ch = [2, 0, 0, (xid >> 8) as u8, xid as u8, 0];
            let (d, _) = s
                .on_message(&DhcpMessage::discover(1, ch), Instant::ZERO, &mut rng)
                .unwrap();
            lo = lo.min(d);
            hi = hi.max(d);
            // Release so the pool never exhausts.
            let rel = DhcpMessage::release(2, ch, Ipv4Addr::UNSPECIFIED, s.config().server_ip);
            s.on_message(&rel, Instant::ZERO, &mut rng);
        }
        assert!(lo >= Duration::from_millis(500));
        assert!(hi < Duration::from_millis(5000));
        assert!(
            hi > Duration::from_millis(2500),
            "should explore the upper half"
        );
    }
}
