//! Deterministic pseudo-random number generation.
//!
//! Every random draw in the workspace flows from a single `u64` seed through
//! this module, so an experiment is exactly reproducible from its seed on any
//! platform and any compiler version. We implement the generator ourselves
//! (xoshiro256** seeded via SplitMix64) instead of relying on an external
//! crate's stream, because external streams may change between crate
//! versions, which would silently change every figure.
//!
//! xoshiro256** is the general-purpose recommendation of Blackman & Vigna:
//! 256 bits of state, period 2^256−1, passes BigCrush, and is a handful of
//! shift/rotate instructions per draw.

use crate::time::Duration;

/// SplitMix64 step; used to expand a 64-bit seed into generator state and to
/// derive independent child streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
///
/// ```
/// use sim_engine::rng::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator.
    ///
    /// The child stream is a deterministic function of the parent seed state
    /// and `stream`; different `stream` values give statistically independent
    /// generators. Used to give each simulated component (PHY loss, DHCP
    /// delays, workload arrivals, …) its own stream so that adding draws in
    /// one component does not perturb another.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and cheap.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below: n must be positive");
        // Lemire 2019: unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range_u64: empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform integer in `[0, n)` as `usize` (for indexing).
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty or not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "Rng::range_f64: bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// `p` outside `[0, 1]` is clamped (a loss rate of 1.2 means "always").
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed float with the given mean.
    ///
    /// # Panics
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "Rng::exp: bad mean {mean}");
        // Inverse CDF; 1 - f64() is in (0, 1] so ln() is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard-normal draw via the Box–Muller transform (cached pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box–Muller on (0,1] × [0,1) uniforms.
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = core::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with mean `mu` and standard deviation `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or not finite.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "Rng::normal: bad sigma {sigma}"
        );
        mu + sigma * self.standard_normal()
    }

    /// Log-normal draw where the *underlying* normal has mean `mu` and
    /// standard deviation `sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto draw with scale `xm > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "Rng::pareto: bad parameters xm={xm} alpha={alpha}"
        );
        xm / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Uniform [`Duration`] in `[lo, hi)`, at nanosecond granularity.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn duration_between(&mut self, lo: Duration, hi: Duration) -> Duration {
        assert!(lo < hi, "Rng::duration_between: empty range [{lo}, {hi})");
        Duration::from_nanos(self.range_u64(lo.as_nanos(), hi.as_nanos()))
    }

    /// Exponentially distributed [`Duration`] with the given mean.
    pub fn exp_duration(&mut self, mean: Duration) -> Duration {
        Duration::from_secs_f64(self.exp(mean.as_secs_f64()))
    }

    /// Pick a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Rng::choose: empty slice");
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample an index according to the given non-negative weights.
    ///
    /// # Panics
    /// Panics if weights are empty, contain a negative entry, or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "Rng::weighted_index: empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(
                    w >= 0.0 && w.is_finite(),
                    "Rng::weighted_index: bad weight {w}"
                );
                w
            })
            .sum();
        assert!(total > 0.0, "Rng::weighted_index: weights sum to zero");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1 // float round-off fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = Rng::new(99);
        let mut parent2 = Rng::new(99);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut other = Rng::new(99).fork(6);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x), "f64 out of range: {x}");
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng::new(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10_000 each; allow ±5 %.
            assert!((9_500..10_500).contains(&c), "bucket count {c} not uniform");
        }
    }

    #[test]
    fn range_endpoints_respected() {
        let mut rng = Rng::new(5);
        for _ in 0..1_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_probability_close() {
        let mut rng = Rng::new(8);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "empirical p = {p}");
    }

    #[test]
    fn exp_mean_close() {
        let mut rng = Rng::new(9);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exp(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "empirical mean = {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = Rng::new(10);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(1.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn pareto_is_at_least_scale() {
        let mut rng = Rng::new(11);
        for _ in 0..10_000 {
            assert!(rng.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn duration_between_in_range() {
        let mut rng = Rng::new(12);
        let lo = Duration::from_millis(500);
        let hi = Duration::from_secs(10);
        for _ in 0..1_000 {
            let d = rng.duration_between(lo, hi);
            assert!(d >= lo && d < hi);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_prefers_heavier() {
        let mut rng = Rng::new(14);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(0).range_u64(5, 5);
    }
}
