//! A compact in-tree property-testing harness.
//!
//! Replaces the external `proptest` dependency for the workspace's
//! invariant tests. Three pieces:
//!
//! * [`Gen`] — a seeded case generator. Scalar draws cover their full
//!   range; collection lengths are capped by the case's *size* budget, the
//!   knob the shrinker turns.
//! * [`check`] / [`check_with`] — the runner: a deterministic sweep of
//!   seeded cases with sizes ramping from tiny to [`Config::max_size`].
//!   On failure it *shrinks by halving* the size (regenerating from the
//!   same case seed at size/2, size/4, … 1) and reports the smallest
//!   still-failing case.
//! * Failure-seed replay: every failure message prints a
//!   `SPIDER_PROP_REPLAY=<name>:<seed>:<size>` incantation; setting that
//!   environment variable makes the named property re-run exactly that
//!   case first, so a CI failure reproduces locally in one run.
//!
//! Properties are closures returning `Result<(), String>`; the
//! [`prop_assert!`](crate::prop_assert) and
//! [`prop_assert_eq!`](crate::prop_assert_eq) macros provide the familiar
//! early-return assertion style. Panics inside a property are caught and
//! treated as failures, so "never panics" properties shrink too.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::par::fork_seed;
use crate::rng::Rng;

/// Environment variable consulted for failure replay
/// (`<property-name>:<case-seed>:<size>`).
pub const REPLAY_ENV: &str = "SPIDER_PROP_REPLAY";

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Master seed; every case seed derives from it and the property name.
    pub seed: u64,
    /// Largest size budget (collection-length cap) the sweep reaches.
    pub max_size: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 96,
            seed: 0x5EED_CAFE,
            max_size: 64,
        }
    }
}

impl Config {
    /// A configuration with `cases` cases and defaults elsewhere.
    pub fn cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// A seeded case generator with a size budget.
#[derive(Debug)]
pub struct Gen {
    rng: Rng,
    size: usize,
}

impl Gen {
    /// A generator for one case.
    pub fn new(seed: u64, size: usize) -> Gen {
        Gen {
            rng: Rng::new(seed),
            size: size.max(1),
        }
    }

    /// The case's size budget (cap on generated collection lengths).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Direct access to the underlying RNG for distribution draws.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Uniform u64 over the full range.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform u32 over the full range.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u64() as u32
    }

    /// Uniform u16 over the full range.
    pub fn u16(&mut self) -> u16 {
        self.rng.next_u64() as u16
    }

    /// Uniform u8 over the full range.
    pub fn u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Uniform u64 in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.range_u64(lo, hi)
    }

    /// Uniform u32 in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// A collection length in `[lo, hi)`, additionally capped by the size
    /// budget — this is what makes shrink-by-halving shrink collections.
    pub fn len_in(&mut self, lo: usize, hi: usize) -> usize {
        let capped_hi = hi.min(lo + self.size + 1);
        if capped_hi <= lo {
            return lo;
        }
        self.usize_in(lo, capped_hi)
    }

    /// Fill `dst` with uniform bytes.
    pub fn fill(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let v = self.rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A byte vector with length in `[lo, hi)` (size-capped).
    pub fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        let n = self.len_in(lo, hi);
        let mut v = vec![0u8; n];
        self.fill(&mut v);
        v
    }

    /// A vector of `f(self)` with length in `[lo, hi)` (size-capped).
    pub fn vec<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.len_in(lo, hi);
        (0..n).map(|_| f(self)).collect()
    }

    /// `Some(f(self))` half the time.
    pub fn option<T>(&mut self, mut f: impl FnMut(&mut Gen) -> T) -> Option<T> {
        if self.bool() {
            Some(f(self))
        } else {
            None
        }
    }
}

/// The outcome of one property case.
pub type CaseResult = Result<(), String>;

/// Run `property` under the default [`Config`].
///
/// # Panics
/// Panics (failing the enclosing test) if any generated case is falsified,
/// reporting the smallest shrunk case and its replay incantation.
pub fn check<F>(name: &str, property: F)
where
    F: Fn(&mut Gen) -> CaseResult,
{
    check_with(name, Config::default(), property)
}

/// Run one case, converting panics into failures.
fn run_case<F>(property: &F, seed: u64, size: usize) -> CaseResult
where
    F: Fn(&mut Gen) -> CaseResult,
{
    match catch_unwind(AssertUnwindSafe(|| property(&mut Gen::new(seed, size)))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("property panicked: {msg}"))
        }
    }
}

/// Run `property` under an explicit [`Config`].
///
/// # Panics
/// See [`check`].
pub fn check_with<F>(name: &str, cfg: Config, property: F)
where
    F: Fn(&mut Gen) -> CaseResult,
{
    // Failure replay: if the caller pinned this property to a case, run
    // that case first and report it directly.
    // simlint: allow(env-read) — test-harness replay hook: reads the pinned case; runs under `cargo test`, never inside a simulation
    if let Ok(replay) = std::env::var(REPLAY_ENV) {
        if let Some((seed, size)) = parse_replay(&replay, name) {
            match run_case(&property, seed, size) {
                Ok(()) => eprintln!("{name}: replayed case (seed {seed:#x}, size {size}) passes"),
                // simlint: allow(panic-path) — test-harness failure reporting: a falsified replayed case must abort the test
                Err(msg) => panic!(
                    "property '{name}' falsified on replayed case \
                     (seed {seed:#x}, size {size}): {msg}"
                ),
            }
            return;
        }
    }

    let name_salt = fnv1a(name.as_bytes());
    let cases = cfg.cases.max(1);
    for case in 0..cases {
        // Sizes ramp from 1 to max_size across the sweep so early cases
        // are naturally tiny.
        let size = 1 + (case as usize * cfg.max_size) / cases as usize;
        let seed = fork_seed(cfg.seed ^ name_salt, case as u64);
        if let Err(first_msg) = run_case(&property, seed, size) {
            // Shrink by halving the size budget, keeping the same seed.
            let mut best = (size, first_msg);
            let mut s = size / 2;
            while s >= 1 {
                if let Err(msg) = run_case(&property, seed, s) {
                    best = (s, msg);
                }
                if s == 1 {
                    break;
                }
                s /= 2;
            }
            let (shrunk_size, msg) = best;
            // simlint: allow(panic-path) — test-harness failure reporting: a falsified property must abort the test with its replay line
            panic!(
                "property '{name}' falsified at case {case}/{cases} \
                 (seed {seed:#x}, size {shrunk_size}): {msg}\n\
                 replay with: {REPLAY_ENV}='{name}:{seed}:{shrunk_size}'"
            );
        }
    }
}

fn parse_replay(replay: &str, name: &str) -> Option<(u64, usize)> {
    let rest = replay.strip_prefix(name)?.strip_prefix(':')?;
    let (seed_s, size_s) = rest.split_once(':')?;
    let seed = if let Some(hex) = seed_s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()?
    } else {
        seed_s.parse().ok()?
    };
    Some((seed, size_s.parse().ok()?))
}

/// Hash a property name into a seed salt (FNV-1a 64).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Early-return property assertion: `prop_assert!(cond)` or
/// `prop_assert!(cond, "format", args…)`. Usable inside closures passed to
/// [`check`](crate::check::check), which return
/// [`CaseResult`](crate::check::CaseResult).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Early-return equality assertion for property closures.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{:?} != {:?} ({}:{})",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        // Count via a Cell-free trick: check takes Fn, so use an atomic.
        let counter = std::sync::atomic::AtomicU32::new(0);
        check_with("always-true", Config::cases(40), |g| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let _ = g.u64();
            Ok(())
        });
        count += counter.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(count, 40);
    }

    #[test]
    fn failing_property_panics_with_replay_line() {
        let err = catch_unwind(|| {
            check_with(
                "always-false",
                Config::cases(8),
                |_| Err("nope".to_string()),
            )
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always-false"), "{msg}");
        assert!(msg.contains(REPLAY_ENV), "{msg}");
        assert!(msg.contains("nope"), "{msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let err = catch_unwind(|| {
            check_with("panics", Config::cases(4), |_| -> CaseResult {
                panic!("boom");
            })
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn shrinking_reports_a_smaller_size() {
        // Fails at every size (the vec is never empty), so halving must
        // walk the reported size all the way down to 1.
        let err = catch_unwind(|| {
            check_with(
                "shrinks",
                Config {
                    cases: 32,
                    seed: 3,
                    max_size: 64,
                },
                |g| {
                    let v = g.bytes(1, 1_000);
                    prop_assert!(v.is_empty(), "len {}", v.len());
                    Ok(())
                },
            )
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        let size = msg
            .split("size ")
            .nth(1)
            .and_then(|s| s.split(')').next())
            .and_then(|s| s.parse::<usize>().ok())
            .expect("size in message");
        assert_eq!(size, 1, "expected the fully shrunk size: {msg}");
    }

    #[test]
    fn same_config_generates_identical_cases() {
        let record = |out: &std::sync::Mutex<Vec<u64>>| {
            let out_ref = out;
            check_with("determinism", Config::cases(16), move |g| {
                out_ref.lock().unwrap().push(g.u64());
                Ok(())
            });
        };
        let a = std::sync::Mutex::new(Vec::new());
        let b = std::sync::Mutex::new(Vec::new());
        record(&a);
        record(&b);
        assert_eq!(*a.lock().unwrap(), *b.lock().unwrap());
    }

    #[test]
    fn gen_ranges_are_respected() {
        let mut g = Gen::new(9, 16);
        for _ in 0..1_000 {
            assert!((10..20).contains(&g.usize_in(10, 20)));
            let f = g.f64_in(-1.5, 2.5);
            assert!((-1.5..2.5).contains(&f));
            let n = g.len_in(2, 100);
            assert!((2..=2 + 16).contains(&n), "len {n} over budget");
        }
        let v = g.bytes(0, 5);
        assert!(v.len() < 5);
        let opt = g.option(|g| g.u8());
        let _ = opt;
    }

    #[test]
    fn replay_string_parses() {
        assert_eq!(parse_replay("name:0x10:3", "name"), Some((16, 3)));
        assert_eq!(parse_replay("name:12:4", "name"), Some((12, 4)));
        assert_eq!(parse_replay("other:12:4", "name"), None);
        assert_eq!(parse_replay("name:bad:4", "name"), None);
    }
}
