//! Zero-dependency wire buffers: the byte-slice codec substrate.
//!
//! Every protocol crate in the workspace (`wifi-mac`, `dhcp`, `tcp-lite`,
//! `spider-core`) encodes and decodes real byte layouts. This module gives
//! them the three pieces they need without an external buffer crate:
//!
//! * [`Bytes`] — an immutable, cheaply cloneable byte buffer
//!   (`Arc<[u8]>` under the hood). Frames and packets are cloned as they
//!   fan out through the simulated network, so clones must be O(1).
//! * [`Writer`] — an append-only encoder over a `Vec<u8>` with big- and
//!   little-endian integer puts (u8/u16/u24/u32/u64) that freezes into a
//!   [`Bytes`].
//! * [`Reader`] — a bounds-checked decode cursor over a byte slice. Every
//!   read returns `Result`, so truncated input surfaces as
//!   [`WireError::Truncated`] instead of a panic (the semantics the codecs
//!   previously borrowed from `bytes`' panicking getters).
//!
//! The integer widths cover what the workspace's layouts use: 802.11
//! headers are little-endian u16-heavy, BOOTP/DHCP is big-endian, and u24
//! exists for the occasional 3-byte field (e.g. OUI-style identifiers).

use core::fmt;
use core::ops::Deref;
use std::sync::Arc;

/// Decode-side failure: the buffer ended before the layout said it should.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// A read of `needed` bytes was attempted with only `remaining` left.
    Truncated {
        /// Bytes the read required.
        needed: usize,
        /// Bytes actually remaining in the cursor.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "wire buffer truncated: needed {needed} bytes, had {remaining}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// An immutable, cheaply cloneable byte buffer.
///
/// Equality, ordering and hashing follow the byte contents; cloning shares
/// the underlying allocation.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Build from a static slice.
    ///
    /// (Copies once; the `'static` bound mirrors the upstream buffer
    /// crate's `from_static`, where the source is a literal.)
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:02x?})", &self.0[..self.0.len().min(32)])?;
        if self.0.len() > 32 {
            write!(f, "… len={}", self.0.len())?;
        }
        Ok(())
    }
}

/// An append-only encoder that freezes into a [`Bytes`].
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A new empty writer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// A new writer with a capacity hint.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u16.
    pub fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u24 (low 24 bits of `v`).
    pub fn put_u24(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes()[1..]);
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u32.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Finish encoding, producing an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Finish encoding, producing the raw vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Reset to empty, keeping the allocation: the scratch-buffer mode.
    ///
    /// A long-lived `Writer` cleared between encodes amortizes its buffer
    /// across every frame on a hot path — `clear` + [`Writer::to_bytes`]
    /// performs exactly one allocation per encode (the shared `Bytes`),
    /// where `Writer::new` + [`Writer::freeze`] pays a growth
    /// reallocation on top.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The bytes written so far, as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Copy the current contents into an immutable buffer **without**
    /// consuming the writer; pair with [`Writer::clear`] to reuse the
    /// scratch allocation for the next encode.
    pub fn to_bytes(&self) -> Bytes {
        Bytes::copy_from_slice(&self.buf)
    }
}

/// A bounds-checked decode cursor over a byte slice.
///
/// Every getter returns `Err(WireError::Truncated)` rather than panicking
/// when the slice runs out, so `?` gives codecs clean truncated-input error
/// paths.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// A cursor over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True if fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Take the next `n` bytes as a slice.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.buf.len(),
            });
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Skip `n` bytes.
    pub fn advance(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }

    /// Consume and return everything left.
    pub fn rest(&mut self) -> &'a [u8] {
        let out = self.buf;
        self.buf = &[];
        out
    }

    /// Copy the next `dst.len()` bytes into `dst`.
    pub fn read_exact(&mut self, dst: &mut [u8]) -> Result<(), WireError> {
        let src = self.take(dst.len())?;
        dst.copy_from_slice(src);
        Ok(())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a little-endian u16.
    pub fn get_u16_le(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a big-endian u24 into the low bits of a u32.
    pub fn get_u24(&mut self) -> Result<u32, WireError> {
        let b = self.take(3)?;
        Ok(u32::from_be_bytes([0, b[0], b[1], b[2]]))
    }

    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian u32.
    pub fn get_u32_le(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian u64.
    pub fn get_u64_le(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip_all_widths() {
        let mut w = Writer::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u16_le(0x1234);
        w.put_u24(0x00AB_CDEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_u64_le(0x0102_0304_0506_0708);
        w.put_slice(b"xyz");
        let bytes = w.freeze();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8(), Ok(0xAB));
        assert_eq!(r.get_u16(), Ok(0x1234));
        assert_eq!(r.get_u16_le(), Ok(0x1234));
        assert_eq!(r.get_u24(), Ok(0x00AB_CDEF));
        assert_eq!(r.get_u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.get_u32_le(), Ok(0xDEAD_BEEF));
        assert_eq!(r.get_u64(), Ok(0x0102_0304_0506_0708));
        assert_eq!(r.get_u64_le(), Ok(0x0102_0304_0506_0708));
        assert_eq!(r.take(3), Ok(&b"xyz"[..]));
        assert!(r.is_empty());
    }

    #[test]
    fn endianness_is_as_laid_out() {
        let mut w = Writer::new();
        w.put_u16(0x0102);
        w.put_u16_le(0x0102);
        w.put_u24(0x0A0B0C);
        assert_eq!(w.into_vec(), vec![0x01, 0x02, 0x02, 0x01, 0x0A, 0x0B, 0x0C]);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let data = [1u8, 2, 3];
        let mut r = Reader::new(&data);
        assert_eq!(
            r.get_u32(),
            Err(WireError::Truncated {
                needed: 4,
                remaining: 3
            })
        );
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u16(), Ok(0x0102));
        assert_eq!(
            r.get_u16(),
            Err(WireError::Truncated {
                needed: 2,
                remaining: 1
            })
        );
        assert_eq!(r.get_u8(), Ok(3));
        assert_eq!(
            r.get_u8(),
            Err(WireError::Truncated {
                needed: 1,
                remaining: 0
            })
        );
    }

    #[test]
    fn advance_and_rest() {
        let data = [9u8, 8, 7, 6];
        let mut r = Reader::new(&data);
        assert!(r.advance(2).is_ok());
        assert_eq!(r.rest(), &[7, 6]);
        assert!(r.is_empty());
        assert!(Reader::new(&data).advance(5).is_err());
    }

    #[test]
    fn read_exact_fills_buffer() {
        let mut r = Reader::new(&[1, 2, 3, 4]);
        let mut out = [0u8; 3];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, [1, 2, 3]);
        let mut too_big = [0u8; 2];
        assert!(r.read_exact(&mut too_big).is_err());
    }

    #[test]
    fn scratch_mode_reuses_allocation_across_encodes() {
        let mut w = Writer::with_capacity(64);
        w.put_slice(b"first frame");
        let first = w.to_bytes();
        assert_eq!(first.as_slice(), b"first frame");
        assert_eq!(w.as_slice(), b"first frame", "to_bytes must not consume");

        w.clear();
        assert!(w.is_empty());
        w.put_slice(b"second");
        assert_eq!(w.to_bytes().as_slice(), b"second");
        // The first snapshot is unaffected by the reuse.
        assert_eq!(first.as_slice(), b"first frame");
    }

    #[test]
    fn bytes_is_cheap_clone_and_content_equal() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_ne!(a, Bytes::from_static(b"abc"));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(&a[..2], &[1, 2]);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }
}
