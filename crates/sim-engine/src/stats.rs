//! Measurement utilities shared by all experiments.
//!
//! Three families of estimator cover everything the paper reports:
//!
//! * [`Summary`] — streaming count/mean/variance/min/max (Welford), used for
//!   e.g. Table 1's switch-latency mean ± stddev.
//! * [`Samples`] — a retained sample set with percentiles and empirical CDF
//!   extraction, used for every CDF figure (Figs. 5, 6, 10–14).
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant signal,
//!   used for connectivity percentage (fraction of time with non-zero
//!   transfer, Table 2).

use crate::time::{Duration, Instant};

/// Streaming summary statistics (Welford's online algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Incorporate one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "Summary::record: non-finite observation {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance with Bessel's correction (0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free; +∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another summary into this one (parallel sweeps).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A retained sample set for percentile / CDF extraction.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "Samples::record: non-finite observation {x}");
        self.values.push(x);
        self.sorted = false;
    }

    /// Record a [`Duration`] observation in seconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // total_cmp is a total order, so even a stray NaN cannot make
            // the sort nondeterministic (it lands at the high end).
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `p`-quantile for `p ∈ [0, 1]` using linear interpolation between
    /// order statistics. Returns 0 for an empty set.
    pub fn quantile(&mut self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "Samples::quantile: p out of range: {p}"
        );
        self.ensure_sorted();
        match self.values.len() {
            0 => 0.0,
            1 => self.values[0],
            n => {
                let pos = p * (n - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                let frac = pos - lo as f64;
                self.values[lo] * (1.0 - frac) + self.values[hi] * frac
            }
        }
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Fraction of observations ≤ `x` — the empirical CDF at a point.
    pub fn cdf_at(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        if self.values.is_empty() {
            return 0.0;
        }
        let idx = self.values.partition_point(|&v| v <= x);
        idx as f64 / self.values.len() as f64
    }

    /// The empirical CDF sampled at `points` evenly spaced values spanning
    /// the observed range: `(value, cumulative fraction)` pairs suitable for
    /// plotting a figure's series.
    pub fn ecdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "Samples::ecdf: need at least 2 points");
        self.ensure_sorted();
        let (Some(&lo), Some(&hi)) = (self.values.first(), self.values.last()) else {
            return Vec::new();
        };
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        (0..points)
            .map(|i| {
                let x = lo + span * i as f64 / (points - 1) as f64;
                (x, self.cdf_at(x))
            })
            .collect()
    }

    /// Merge another sample set into this one.
    pub fn merge(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }

    /// Read-only access to the raw values (unsorted order not guaranteed).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Feed it the signal's value whenever the value *changes*; `finish` closes
/// the final segment. Used for connectivity percentage: the signal is 1.0
/// while data flows and 0.0 during a disruption.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_change: Instant,
    current: f64,
    weighted_sum: f64,
    total: Duration,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// New accumulator; the signal is undefined until the first `set`.
    pub fn new() -> Self {
        TimeWeighted {
            last_change: Instant::ZERO,
            current: 0.0,
            weighted_sum: 0.0,
            total: Duration::ZERO,
            started: false,
        }
    }

    /// Record that the signal takes value `value` from time `at` onward.
    ///
    /// # Panics
    /// Panics if `at` precedes the previous change.
    pub fn set(&mut self, at: Instant, value: f64) {
        if self.started {
            let span = at.since(self.last_change);
            self.weighted_sum += self.current * span.as_secs_f64();
            self.total += span;
        }
        self.started = true;
        self.last_change = at;
        self.current = value;
    }

    /// Close the final segment at time `at` and return the time-weighted
    /// average over the observed span (0 if nothing was observed).
    pub fn finish(&mut self, at: Instant) -> f64 {
        if self.started {
            self.set(at, self.current);
        }
        if self.total.is_zero() {
            0.0
        } else {
            self.weighted_sum / self.total.as_secs_f64()
        }
    }

    /// Total observed span so far.
    pub fn observed(&self) -> Duration {
        self.total
    }
}

/// A fixed-bin histogram over `[lo, hi)`; out-of-range values clamp to the
/// end bins. Used for diagnostic output of delay distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "Histogram::new: empty range");
        assert!(bins > 0, "Histogram::new: zero bins");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        let n = self.bins.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.bins[idx.min(n - 1)] += 1;
        self.count += 1;
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `(bin centre, fraction)` pairs.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let centre = self.lo + width * (i as f64 + 0.5);
                let frac = if self.count == 0 {
                    0.0
                } else {
                    c as f64 / self.count as f64
                };
                (centre, frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut s = Samples::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert!((s.quantile(0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let mut s = Samples::new();
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn cdf_at_counts_inclusive() {
        let mut s = Samples::new();
        for x in [1.0, 2.0, 2.0, 3.0] {
            s.record(x);
        }
        assert_eq!(s.cdf_at(0.5), 0.0);
        assert_eq!(s.cdf_at(2.0), 0.75);
        assert_eq!(s.cdf_at(10.0), 1.0);
    }

    #[test]
    fn ecdf_is_monotone_and_spans_range() {
        let mut s = Samples::new();
        for i in 0..100 {
            s.record(i as f64);
        }
        let pts = s.ecdf(20);
        assert_eq!(pts.len(), 20);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[19].0, 99.0);
        assert!((pts[19].1 - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "ECDF must be monotone");
        }
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(Instant::from_secs(0), 1.0); // connected 0–3s
        tw.set(Instant::from_secs(3), 0.0); // disrupted 3–4s
        let avg = tw.finish(Instant::from_secs(4));
        assert!((avg - 0.75).abs() < 1e-12);
        assert_eq!(tw.observed(), Duration::from_secs(4));
    }

    #[test]
    fn time_weighted_empty_is_zero() {
        let mut tw = TimeWeighted::new();
        assert_eq!(tw.finish(Instant::from_secs(5)), 0.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-5.0); // clamps to first bin
        h.record(0.5);
        h.record(9.99);
        h.record(25.0); // clamps to last bin
        assert_eq!(h.count(), 4);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[9], 2);
        let norm = h.normalized();
        assert!((norm[0].1 - 0.5).abs() < 1e-12);
        assert!((norm[0].0 - 0.5).abs() < 1e-12);
    }
}
