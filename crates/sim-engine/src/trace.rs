//! Lightweight simulation tracing.
//!
//! Debugging a discrete-event simulation means asking "what happened around
//! t = 41.2 s?" — a question print-debugging answers badly once runs involve
//! millions of events. [`Trace`] is a bounded ring of timestamped,
//! categorized records: cheap to keep on (a few allocations per record,
//! nothing when filtered out), bounded in memory, and dumpable on demand.
//!
//! ```
//! use sim_engine::trace::{Category, Trace};
//! use sim_engine::time::Instant;
//!
//! let mut trace = Trace::new(1024);
//! trace.enable(Category::Mac);
//! trace.record(Instant::from_millis(5), Category::Mac, || "assoc-req -> ap3".into());
//! trace.record(Instant::from_millis(6), Category::Tcp, || "ignored".into());
//! assert_eq!(trace.len(), 1); // Tcp was not enabled
//! let dump = trace.dump();
//! assert!(dump.contains("assoc-req"));
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::time::Instant;

/// Trace record categories, mirroring the simulation's layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Radio and channel scheduling.
    Radio,
    /// 802.11 management (probe/auth/assoc/PSM).
    Mac,
    /// DHCP exchanges.
    Dhcp,
    /// TCP events.
    Tcp,
    /// Driver policy decisions (selection, teardown, scanning).
    Driver,
    /// Mobility milestones (encounters, laps).
    Mobility,
}

impl Category {
    const ALL: [Category; 6] = [
        Category::Radio,
        Category::Mac,
        Category::Dhcp,
        Category::Tcp,
        Category::Driver,
        Category::Mobility,
    ];

    fn bit(self) -> u8 {
        match self {
            Category::Radio => 1 << 0,
            Category::Mac => 1 << 1,
            Category::Dhcp => 1 << 2,
            Category::Tcp => 1 << 3,
            Category::Driver => 1 << 4,
            Category::Mobility => 1 << 5,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Category::Radio => "radio",
            Category::Mac => "mac",
            Category::Dhcp => "dhcp",
            Category::Tcp => "tcp",
            Category::Driver => "driver",
            Category::Mobility => "mobility",
        }
    }
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct Record {
    /// When it happened (virtual time).
    pub at: Instant,
    /// Which layer produced it.
    pub category: Category,
    /// Human-readable description.
    pub message: String,
}

/// A bounded, category-filtered ring of simulation records.
#[derive(Debug)]
pub struct Trace {
    ring: VecDeque<Record>,
    capacity: usize,
    enabled_mask: u8,
    recorded: u64,
    dropped: u64,
}

impl Trace {
    /// A trace holding at most `capacity` records (oldest evicted first),
    /// with every category disabled.
    pub fn new(capacity: usize) -> Trace {
        assert!(capacity > 0, "Trace::new: zero capacity");
        Trace {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled_mask: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    /// A trace with every category enabled.
    pub fn all(capacity: usize) -> Trace {
        let mut t = Trace::new(capacity);
        for c in Category::ALL {
            t.enable(c);
        }
        t
    }

    /// Enable a category.
    pub fn enable(&mut self, category: Category) {
        self.enabled_mask |= category.bit();
    }

    /// Disable a category.
    pub fn disable(&mut self, category: Category) {
        self.enabled_mask &= !category.bit();
    }

    /// True if `category` records are kept.
    pub fn is_enabled(&self, category: Category) -> bool {
        self.enabled_mask & category.bit() != 0
    }

    /// Record an event; `message` is only evaluated when the category is
    /// enabled, so disabled tracing costs one branch.
    pub fn record(&mut self, at: Instant, category: Category, message: impl FnOnce() -> String) {
        if !self.is_enabled(category) {
            return;
        }
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Record {
            at,
            category,
            message: message(),
        });
        self.recorded += 1;
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records accepted (including ones since evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records evicted by the ring bound.
    pub fn evicted(&self) -> u64 {
        self.dropped
    }

    /// Iterate over held records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.ring.iter()
    }

    /// Records within `[from, to)`.
    pub fn window(&self, from: Instant, to: Instant) -> Vec<&Record> {
        self.ring
            .iter()
            .filter(|r| r.at >= from && r.at < to)
            .collect()
    }

    /// Render the whole ring as text, one record per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.ring {
            let _ = writeln!(out, "{} [{}] {}", r.at, r.category.tag(), r.message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_categories_cost_nothing() {
        let mut t = Trace::new(8);
        let mut evaluated = false;
        t.record(Instant::ZERO, Category::Tcp, || {
            evaluated = true;
            "x".into()
        });
        assert!(!evaluated, "message closure must not run when disabled");
        assert!(t.is_empty());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::all(3);
        for i in 0..5u64 {
            t.record(Instant::from_millis(i), Category::Mac, || format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.evicted(), 2);
        assert_eq!(t.recorded(), 5);
        let msgs: Vec<&str> = t.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn window_filters_by_time() {
        let mut t = Trace::all(16);
        for i in 0..10u64 {
            t.record(Instant::from_millis(i * 100), Category::Dhcp, || {
                format!("e{i}")
            });
        }
        let w = t.window(Instant::from_millis(250), Instant::from_millis(550));
        let msgs: Vec<&str> = w.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["e3", "e4", "e5"]);
    }

    #[test]
    fn enable_disable_roundtrip() {
        let mut t = Trace::new(4);
        assert!(!t.is_enabled(Category::Radio));
        t.enable(Category::Radio);
        assert!(t.is_enabled(Category::Radio));
        assert!(!t.is_enabled(Category::Driver));
        t.disable(Category::Radio);
        assert!(!t.is_enabled(Category::Radio));
    }

    #[test]
    fn dump_contains_tags_and_times() {
        let mut t = Trace::all(4);
        t.record(Instant::from_secs(2), Category::Driver, || {
            "picked ap7".into()
        });
        let d = t.dump();
        assert!(d.contains("[driver]"));
        assert!(d.contains("picked ap7"));
        assert!(d.contains("2.000000s"));
    }
}
