//! Virtual time for the discrete-event simulator.
//!
//! The simulator owns its clock: nothing in the workspace reads the wall
//! clock. Time is an absolute [`Instant`] measured in integer nanoseconds
//! since simulation start, and a [`Duration`] is the difference between two
//! instants. Integer nanoseconds give us:
//!
//! * exact, platform-independent reproducibility (no floating-point drift in
//!   the event queue ordering), and
//! * enough range (u64 nanoseconds ≈ 584 years) for any experiment.
//!
//! The API deliberately mirrors `std::time` where that makes sense, per the
//! Tokio/std naming convention, so call sites read naturally.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `Instant` is `Copy`, totally ordered, and starts at [`Instant::ZERO`].
///
/// ```
/// use sim_engine::time::{Duration, Instant};
/// let t = Instant::ZERO + Duration::from_millis(400);
/// assert_eq!(t.as_millis(), 400);
/// assert!(t > Instant::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant {
    nanos: u64,
}

impl Instant {
    /// The start of simulated time.
    pub const ZERO: Instant = Instant { nanos: 0 };

    /// Construct from whole nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        Instant { nanos }
    }

    /// Construct from whole microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        Instant {
            nanos: micros * NANOS_PER_MICRO,
        }
    }

    /// Construct from whole milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        Instant {
            nanos: millis * NANOS_PER_MILLI,
        }
    }

    /// Construct from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        Instant {
            nanos: secs * NANOS_PER_SEC,
        }
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.nanos / NANOS_PER_MICRO
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.nanos / NANOS_PER_MILLI
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / NANOS_PER_SEC as f64
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self`; use [`Instant::saturating_since`]
    /// when that can legitimately happen.
    pub fn since(self, earlier: Instant) -> Duration {
        assert!(
            self.nanos >= earlier.nanos,
            "Instant::since: earlier ({earlier}) is after self ({self})"
        );
        Duration::from_nanos(self.nanos - earlier.nanos)
    }

    /// The later of two instants.
    pub fn max(self, other: Instant) -> Instant {
        if self.nanos >= other.nanos {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: Instant) -> Instant {
        if self.nanos <= other.nanos {
            self
        } else {
            other
        }
    }

    /// Add a duration, saturating at the maximum representable instant.
    pub fn saturating_add(self, d: Duration) -> Instant {
        Instant {
            nanos: self.nanos.saturating_add(d.nanos),
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant {
            nanos: self
                .nanos
                .checked_add(rhs.nanos)
                // simlint: allow(panic-path) — operator impls cannot return Result; virtual-time overflow is an unrecoverable config error that must be loud
                .expect("Instant + Duration overflowed u64 nanoseconds"),
        }
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant {
            nanos: self
                .nanos
                .checked_sub(rhs.nanos)
                // simlint: allow(panic-path) — operator impls cannot return Result; going before simulation start is a logic error that must be loud
                .expect("Instant - Duration underflowed simulation start"),
        }
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in integer nanoseconds.
///
/// ```
/// use sim_engine::time::Duration;
/// let d = Duration::from_millis(400) * 3;
/// assert_eq!(d.as_millis(), 1200);
/// assert_eq!(d / 2, Duration::from_millis(600));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    nanos: u64,
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration { nanos: 0 };
    /// The largest representable span (≈ 584 years).
    pub const MAX: Duration = Duration { nanos: u64::MAX };

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration { nanos }
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration {
            nanos: micros * NANOS_PER_MICRO,
        }
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration {
            nanos: millis * NANOS_PER_MILLI,
        }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration {
            nanos: secs * NANOS_PER_SEC,
        }
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics on negative, NaN, or out-of-range input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "Duration::from_secs_f64: invalid seconds {secs}"
        );
        let nanos = secs * NANOS_PER_SEC as f64;
        assert!(
            nanos <= u64::MAX as f64,
            "Duration::from_secs_f64: {secs}s overflows"
        );
        Duration {
            nanos: nanos.round() as u64,
        }
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.nanos / NANOS_PER_MICRO
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.nanos / NANOS_PER_MILLI
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.nanos / NANOS_PER_SEC
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / NANOS_PER_SEC as f64
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.nanos == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration {
            nanos: self.nanos.saturating_add(rhs.nanos),
        }
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, factor: u64) -> Option<Duration> {
        self.nanos
            .checked_mul(factor)
            .map(|nanos| Duration { nanos })
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite factors.
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "Duration::mul_f64: invalid factor {factor}"
        );
        Duration {
            nanos: (self.nanos as f64 * factor).round() as u64,
        }
    }

    /// The larger of two spans.
    pub fn max(self, other: Duration) -> Duration {
        if self.nanos >= other.nanos {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: Duration) -> Duration {
        if self.nanos <= other.nanos {
            self
        } else {
            other
        }
    }

    /// Clamp this span into `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Duration, hi: Duration) -> Duration {
        assert!(lo <= hi, "Duration::clamp: lo {lo} > hi {hi}");
        self.max(lo).min(hi)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration {
            nanos: self
                .nanos
                .checked_add(rhs.nanos)
                // simlint: allow(panic-path) — operator impls cannot return Result; virtual-time overflow is an unrecoverable config error that must be loud
                .expect("Duration + Duration overflowed"),
        }
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration {
            nanos: self
                .nanos
                .checked_sub(rhs.nanos)
                // simlint: allow(panic-path) — operator impls cannot return Result; negative durations are unrepresentable and must fail loud
                .expect("Duration - Duration underflowed"),
        }
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        // simlint: allow(panic-path) — operator impls cannot return Result; virtual-time overflow is an unrecoverable config error that must be loud
        self.checked_mul(rhs).expect("Duration * u64 overflowed")
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration {
            nanos: self.nanos / rhs,
        }
    }
}

impl Div<Duration> for Duration {
    type Output = f64;
    /// Ratio of two spans as a float (e.g. a schedule fraction).
    fn div(self, rhs: Duration) -> f64 {
        assert!(!rhs.is_zero(), "Duration / Duration: divide by zero span");
        self.nanos as f64 / rhs.nanos as f64
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.nanos >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.nanos as f64 / NANOS_PER_MILLI as f64)
        } else if self.nanos >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", self.nanos as f64 / NANOS_PER_MICRO as f64)
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_roundtrips_units() {
        assert_eq!(Instant::from_secs(2).as_millis(), 2_000);
        assert_eq!(Instant::from_millis(5).as_micros(), 5_000);
        assert_eq!(Instant::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Instant::ZERO.as_nanos(), 0);
    }

    #[test]
    fn duration_roundtrips_units() {
        assert_eq!(Duration::from_secs(3).as_millis(), 3_000);
        assert_eq!(Duration::from_millis(400).as_secs_f64(), 0.4);
        assert_eq!(Duration::from_secs_f64(0.0005), Duration::from_micros(500));
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = Instant::from_millis(100);
        let t1 = t0 + Duration::from_millis(50);
        assert_eq!(t1, Instant::from_millis(150));
        assert_eq!(t1 - t0, Duration::from_millis(50));
        assert_eq!(t1 - Duration::from_millis(150), Instant::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = Instant::from_millis(10);
        let late = Instant::from_millis(20);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_reversed() {
        let _ = Instant::from_millis(1).since(Instant::from_millis(2));
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_millis(200);
        assert_eq!(d * 3, Duration::from_millis(600));
        assert_eq!(d / 4, Duration::from_millis(50));
        assert_eq!(d.mul_f64(0.5), Duration::from_millis(100));
        assert!((Duration::from_millis(100) / Duration::from_millis(400) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn duration_clamp_and_minmax() {
        let d = Duration::from_millis(500);
        assert_eq!(
            d.clamp(Duration::from_millis(100), Duration::from_millis(300)),
            Duration::from_millis(300)
        );
        assert_eq!(
            d.clamp(Duration::from_millis(600), Duration::from_millis(900)),
            Duration::from_millis(600)
        );
        assert_eq!(d.max(Duration::from_secs(1)), Duration::from_secs(1));
        assert_eq!(d.min(Duration::from_secs(1)), d);
    }

    #[test]
    fn duration_saturating_ops() {
        assert_eq!(
            Duration::from_millis(1).saturating_sub(Duration::from_millis(2)),
            Duration::ZERO
        );
        assert_eq!(
            Duration::MAX.saturating_add(Duration::from_secs(1)),
            Duration::MAX
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Duration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", Duration::from_micros(9)), "9.000us");
        assert_eq!(format!("{}", Duration::from_nanos(3)), "3ns");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            Instant::from_millis(5),
            Instant::ZERO,
            Instant::from_secs(1),
            Instant::from_micros(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Instant::ZERO,
                Instant::from_micros(1),
                Instant::from_millis(5),
                Instant::from_secs(1)
            ]
        );
    }
}
