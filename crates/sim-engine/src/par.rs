//! Std-only scoped worker pool with deterministic per-task RNG forking.
//!
//! The experiment harness fans out over (scenario × seed) grids — the hot
//! path behind every EXPERIMENTS.md figure. This module replaces the old
//! external scoped-thread fan-out with `std::thread::scope` plus a
//! work-stealing-free claim counter, so the workspace needs no external
//! crate for parallelism.
//!
//! Determinism contract: results are a pure function of the task list.
//! Each task is claimed by exactly one worker, computed independently, and
//! written back to its input slot, so [`map`] returns the same `Vec` for 1
//! worker and N workers (verified by tests). For tasks that need
//! randomness, [`fork_seed`] derives a per-task seed from a master seed and
//! the task index — a deterministic function of `(master, index)` only,
//! never of scheduling order or worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::rng::Rng;

/// Number of workers [`map`] uses: the machine's available parallelism,
/// or 1 if it cannot be determined.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derive the seed for task `index` from a `master` seed.
///
/// A SplitMix64-style mix of the pair: deterministic, independent of
/// worker count, and statistically independent across indices. Use it to
/// give every task in a batch its own [`Rng`] stream:
///
/// ```
/// use sim_engine::par::{fork_seed, map_with_workers};
/// use sim_engine::rng::Rng;
/// let master = 42;
/// let draws = map_with_workers((0..8).collect::<Vec<u64>>(), 4, |i, _| {
///     Rng::new(fork_seed(master, i as u64)).next_u64()
/// });
/// assert_eq!(draws[0], Rng::new(fork_seed(master, 0)).next_u64());
/// ```
pub fn fork_seed(master: u64, index: u64) -> u64 {
    // Two rounds of SplitMix64 finalization over the combined pair; the
    // golden-ratio stride decorrelates adjacent indices.
    let mut z = master
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience: a ready-made generator for task `index` of a batch.
pub fn task_rng(master: u64, index: u64) -> Rng {
    Rng::new(fork_seed(master, index))
}

/// Run `f` over every task on [`available_workers`] OS threads, returning
/// results in task order.
///
/// `f` receives `(index, task)`. Panics in `f` propagate to the caller
/// once all workers have stopped.
pub fn map<T, R, F>(tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_with_workers(tasks, available_workers(), f)
}

/// [`map`] with an explicit worker count (1 = fully sequential; useful for
/// determinism tests and debugging).
///
/// # Panics
/// Panics if `workers == 0`, or if `f` panics on any task.
pub fn map_with_workers<T, R, F>(tasks: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    assert!(
        workers > 0,
        "par::map_with_workers: need at least one worker"
    );
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    // One slot per task. Slot mutexes are uncontended (each slot is touched
    // by exactly one worker); the atomic counter hands out indices.
    let task_slots: Vec<Mutex<Option<T>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let task_slots = &task_slots;
    let result_slots = &result_slots;
    let next_ref = &next;

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = task_slots[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("task claimed twice");
                let result = f(i, task);
                *result_slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    result_slots
        .iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.lock()
                .expect("result slot poisoned")
                .take()
                .unwrap_or_else(|| panic!("task {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately CPU-bound task: many RNG draws from a forked seed.
    fn spin(master: u64, index: usize, draws: u32) -> u64 {
        let mut rng = task_rng(master, index as u64);
        let mut acc = 0u64;
        for _ in 0..draws {
            acc = acc.wrapping_add(rng.next_u64());
        }
        acc
    }

    #[test]
    fn results_keep_task_order() {
        let out = map_with_workers((0..100u64).collect(), 4, |i, t| {
            assert_eq!(i as u64, t);
            t * 2
        });
        assert_eq!(out, (0..100u64).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn one_worker_and_many_workers_agree_on_same_seeds() {
        // The determinism contract: identical output for any worker count.
        let tasks: Vec<usize> = (0..24).collect();
        let sequential = map_with_workers(tasks.clone(), 1, |i, _| spin(20111206, i, 10_000));
        for workers in [2, 3, 8] {
            let parallel =
                map_with_workers(tasks.clone(), workers, |i, _| spin(20111206, i, 10_000));
            assert_eq!(sequential, parallel, "output differs at {workers} workers");
        }
    }

    #[test]
    fn fork_seed_is_deterministic_and_spread_out() {
        assert_eq!(fork_seed(1, 2), fork_seed(1, 2));
        let seeds: std::collections::HashSet<u64> = (0..1_000).map(|i| fork_seed(77, i)).collect();
        assert_eq!(seeds.len(), 1_000, "per-task seeds must not collide");
        // Different masters give different per-task streams.
        assert_ne!(fork_seed(1, 0), fork_seed(2, 0));
    }

    #[test]
    fn empty_and_single_task_batches() {
        let empty: Vec<u64> = map(Vec::<u64>::new(), |_, t| t);
        assert!(empty.is_empty());
        assert_eq!(map_with_workers(vec![41u64], 8, |_, t| t + 1), vec![42]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = map_with_workers(vec![1u64, 2, 3], 64, |_, t| t);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn n_workers_beat_one_on_a_multi_task_batch() {
        // Wall-clock smoke test; only meaningful with real parallelism.
        let cores = available_workers();
        if cores < 2 {
            eprintln!("skipping parallel speedup smoke test: {cores} core(s) available");
            return;
        }
        let tasks: Vec<usize> = (0..cores * 4).collect();
        let draws = 3_000_000u32;
        let t1 = std::time::Instant::now();
        let seq = map_with_workers(tasks.clone(), 1, |i, _| spin(5, i, draws));
        let sequential = t1.elapsed();
        let t2 = std::time::Instant::now();
        let par = map_with_workers(tasks, cores, |i, _| spin(5, i, draws));
        let parallel = t2.elapsed();
        assert_eq!(seq, par);
        // Generous bound: any real speedup passes; scheduler noise does not.
        assert!(
            parallel < sequential,
            "parallel {parallel:?} not faster than sequential {sequential:?} on {cores} cores"
        );
    }
}
