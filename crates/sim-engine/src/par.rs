//! Std-only scoped worker pool with deterministic per-task RNG forking.
//!
//! The experiment harness fans out over (scenario × seed) grids — the hot
//! path behind every EXPERIMENTS.md figure. This module replaces the old
//! external scoped-thread fan-out with `std::thread::scope` plus a
//! work-stealing-free claim counter, so the workspace needs no external
//! crate for parallelism.
//!
//! Determinism contract: results are a pure function of the task list.
//! Each task is claimed by exactly one worker, computed independently, and
//! written back to its input slot, so [`map`] returns the same `Vec` for 1
//! worker and N workers (verified by tests). For tasks that need
//! randomness, [`fork_seed`] derives a per-task seed from a master seed and
//! the task index — a deterministic function of `(master, index)` only,
//! never of scheduling order or worker count.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::rng::Rng;

/// A shared cooperative-cancellation flag for [`map_cancellable`] batches.
///
/// Cloning is cheap (an `Arc` bump); any clone can cancel the batch from
/// another thread — a signal handler, a watchdog, or a test that wants to
/// interrupt a sweep mid-flight. Cancellation is *cooperative*: tasks that
/// a worker already claimed run to completion, but no further task is
/// claimed once the flag is raised, so a batch stops at the next task
/// boundary rather than mid-simulation.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raise the flag: no new task will be claimed after this returns.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has the flag been raised?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Number of workers [`map`] uses: the machine's available parallelism,
/// or 1 if it cannot be determined.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derive the seed for task `index` from a `master` seed.
///
/// A SplitMix64-style mix of the pair: deterministic, independent of
/// worker count, and statistically independent across indices. Use it to
/// give every task in a batch its own [`Rng`] stream:
///
/// ```
/// use sim_engine::par::{fork_seed, map_with_workers};
/// use sim_engine::rng::Rng;
/// let master = 42;
/// let draws = map_with_workers((0..8).collect::<Vec<u64>>(), 4, |i, _| {
///     Rng::new(fork_seed(master, i as u64)).next_u64()
/// });
/// assert_eq!(draws[0], Rng::new(fork_seed(master, 0)).next_u64());
/// ```
pub fn fork_seed(master: u64, index: u64) -> u64 {
    // Two rounds of SplitMix64 finalization over the combined pair; the
    // golden-ratio stride decorrelates adjacent indices.
    let mut z = master
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience: a ready-made generator for task `index` of a batch.
pub fn task_rng(master: u64, index: u64) -> Rng {
    Rng::new(fork_seed(master, index))
}

/// Run `f` over every task on [`available_workers`] OS threads, returning
/// results in task order.
///
/// `f` receives `(index, task)`. Panics in `f` propagate to the caller
/// once all workers have stopped.
pub fn map<T, R, F>(tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_with_workers(tasks, available_workers(), f)
}

/// [`map`] with an explicit worker count (1 = fully sequential; useful for
/// determinism tests and debugging).
///
/// # Panics
/// Panics if `workers == 0`, or if `f` panics on any task.
pub fn map_with_workers<T, R, F>(tasks: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_cancellable(tasks, workers, &CancelToken::new(), f)
        .into_iter()
        .enumerate()
        // simlint: allow(panic-path) — documented contract: map_with_workers promises a result per task and propagates worker death as a panic
        .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} produced no result")))
        .collect()
}

/// [`map_with_workers`] with cooperative cancellation.
///
/// Workers claim task indices dynamically from a shared counter (the
/// work-stealing-style scheduling every `map` variant uses), but check
/// `cancel` before every claim: once [`CancelToken::cancel`] is called, no
/// further task starts. Already-running tasks finish and their results are
/// kept, so the returned vector has `Some(result)` for every task that
/// completed and `None` for every task that was never claimed. Without
/// cancellation every slot is `Some`, and results are identical to
/// [`map_with_workers`] at any worker count.
///
/// # Panics
/// Panics if `workers == 0`, or if `f` panics on any task.
pub fn map_cancellable<T, R, F>(
    tasks: Vec<T>,
    workers: usize,
    cancel: &CancelToken,
    f: F,
) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    assert!(
        workers > 0,
        "par::map_cancellable: need at least one worker"
    );
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    // One slot per task. Slot mutexes are uncontended (each slot is touched
    // by exactly one worker); the atomic counter hands out indices.
    let task_slots: Vec<Mutex<Option<T>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let task_slots = &task_slots;
    let result_slots = &result_slots;
    let next_ref = &next;

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(move || loop {
                if cancel.is_cancelled() {
                    break;
                }
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Poison recovery: another worker panicking while holding a
                // slot must not cascade — the caller sees its missing result.
                let Some(task) = task_slots[i]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                else {
                    // The fetch_add above hands each index to exactly one
                    // worker, so the slot is always full; if that invariant
                    // ever breaks, skip — the caller reports the hole.
                    continue;
                };
                let result = f(i, task);
                *result_slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
            });
        }
    });

    result_slots
        .iter()
        .map(|slot| slot.lock().unwrap_or_else(|p| p.into_inner()).take())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately CPU-bound task: many RNG draws from a forked seed.
    fn spin(master: u64, index: usize, draws: u32) -> u64 {
        let mut rng = task_rng(master, index as u64);
        let mut acc = 0u64;
        for _ in 0..draws {
            acc = acc.wrapping_add(rng.next_u64());
        }
        acc
    }

    #[test]
    fn results_keep_task_order() {
        let out = map_with_workers((0..100u64).collect(), 4, |i, t| {
            assert_eq!(i as u64, t);
            t * 2
        });
        assert_eq!(out, (0..100u64).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn one_worker_and_many_workers_agree_on_same_seeds() {
        // The determinism contract: identical output for any worker count.
        let tasks: Vec<usize> = (0..24).collect();
        let sequential = map_with_workers(tasks.clone(), 1, |i, _| spin(20111206, i, 10_000));
        for workers in [2, 3, 8] {
            let parallel =
                map_with_workers(tasks.clone(), workers, |i, _| spin(20111206, i, 10_000));
            assert_eq!(sequential, parallel, "output differs at {workers} workers");
        }
    }

    #[test]
    fn fork_seed_is_deterministic_and_spread_out() {
        assert_eq!(fork_seed(1, 2), fork_seed(1, 2));
        let seeds: std::collections::HashSet<u64> = (0..1_000).map(|i| fork_seed(77, i)).collect();
        assert_eq!(seeds.len(), 1_000, "per-task seeds must not collide");
        // Different masters give different per-task streams.
        assert_ne!(fork_seed(1, 0), fork_seed(2, 0));
    }

    #[test]
    fn empty_and_single_task_batches() {
        let empty: Vec<u64> = map(Vec::<u64>::new(), |_, t| t);
        assert!(empty.is_empty());
        assert_eq!(map_with_workers(vec![41u64], 8, |_, t| t + 1), vec![42]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = map_with_workers(vec![1u64, 2, 3], 64, |_, t| t);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn uncancelled_map_cancellable_matches_map() {
        let tasks: Vec<usize> = (0..16).collect();
        let plain = map_with_workers(tasks.clone(), 4, |i, _| spin(7, i, 1_000));
        let cancellable = map_cancellable(tasks, 4, &CancelToken::new(), |i, _| spin(7, i, 1_000));
        assert_eq!(cancellable, plain.into_iter().map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn pre_cancelled_batch_claims_nothing() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = map_cancellable((0..8u64).collect(), 4, &cancel, |_, t| t);
        assert_eq!(out, vec![None; 8]);
    }

    #[test]
    fn mid_batch_cancel_stops_new_claims_but_keeps_finished_results() {
        // Cancel from inside task 3; with one worker the claim order is the
        // task order, so tasks 0..=3 complete and the rest are never run.
        let cancel = CancelToken::new();
        let cancel_inside = cancel.clone();
        let out = map_cancellable((0..10u64).collect(), 1, &cancel, move |i, t| {
            if i == 3 {
                cancel_inside.cancel();
            }
            t * 2
        });
        assert_eq!(
            out,
            vec![
                Some(0),
                Some(2),
                Some(4),
                Some(6),
                None,
                None,
                None,
                None,
                None,
                None
            ]
        );
        assert!(cancel.is_cancelled());
    }

    #[test]
    fn completed_prefix_is_deterministic_for_completed_tasks() {
        // Whatever subset completes under cancellation, each completed
        // task's result must equal the uncancelled run's result.
        let reference = map_with_workers((0..12usize).collect(), 1, |i, _| spin(9, i, 2_000));
        let cancel = CancelToken::new();
        let cancel_inside = cancel.clone();
        let partial = map_cancellable((0..12usize).collect(), 3, &cancel, move |i, _| {
            if i == 5 {
                cancel_inside.cancel();
            }
            spin(9, i, 2_000)
        });
        for (i, slot) in partial.iter().enumerate() {
            if let Some(v) = slot {
                assert_eq!(*v, reference[i], "task {i} diverged under cancellation");
            }
        }
    }

    #[test]
    fn n_workers_beat_one_on_a_multi_task_batch() {
        // Wall-clock smoke test; only meaningful with real parallelism.
        let cores = available_workers();
        if cores < 2 {
            eprintln!("skipping parallel speedup smoke test: {cores} core(s) available");
            return;
        }
        let tasks: Vec<usize> = (0..cores * 4).collect();
        let draws = 3_000_000u32;
        let t1 = std::time::Instant::now();
        let seq = map_with_workers(tasks.clone(), 1, |i, _| spin(5, i, draws));
        let sequential = t1.elapsed();
        let t2 = std::time::Instant::now();
        let par = map_with_workers(tasks, cores, |i, _| spin(5, i, draws));
        let parallel = t2.elapsed();
        assert_eq!(seq, par);
        // Generous bound: any real speedup passes; scheduler noise does not.
        assert!(
            parallel < sequential,
            "parallel {parallel:?} not faster than sequential {sequential:?} on {cores} cores"
        );
    }
}
