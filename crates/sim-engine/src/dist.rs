//! Configurable probability distributions.
//!
//! Deployment generators and workload synthesizers take distribution
//! *parameters* from config; [`Dist`] gives those configs a single,
//! serializable-friendly vocabulary instead of hard-coding a family per
//! knob. All sampling goes through the deterministic [`Rng`].

use crate::rng::Rng;
use crate::time::Duration;

/// A parametric distribution over non-negative reals.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always `value`.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean.
        mean: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Pareto with scale `xm` and shape `alpha`.
    Pareto {
        /// Scale (minimum value).
        xm: f64,
        /// Shape.
        alpha: f64,
    },
    /// Normal clamped below at zero.
    NormalClamped {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
}

impl Dist {
    /// Draw one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => rng.range_f64(lo, hi),
            Dist::Exponential { mean } => rng.exp(mean),
            Dist::LogNormal { mu, sigma } => rng.log_normal(mu, sigma),
            Dist::Pareto { xm, alpha } => rng.pareto(xm, alpha),
            Dist::NormalClamped { mu, sigma } => rng.normal(mu, sigma).max(0.0),
        }
    }

    /// Draw a [`Duration`] (sample interpreted as seconds, clamped at 0).
    pub fn sample_duration(&self, rng: &mut Rng) -> Duration {
        Duration::from_secs_f64(self.sample(rng).max(0.0))
    }

    /// The distribution's mean, where it exists in closed form.
    /// (Pareto with `alpha ≤ 1` has no mean; returns `None`.)
    pub fn mean(&self) -> Option<f64> {
        Some(match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exponential { mean } => mean,
            Dist::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
            Dist::Pareto { xm, alpha } => {
                if alpha <= 1.0 {
                    return None;
                }
                alpha * xm / (alpha - 1.0)
            }
            // The clamp truncates; the unclamped mean is close when
            // mu ≫ sigma, which is the config regime — report that.
            Dist::NormalClamped { mu, .. } => mu.max(0.0),
        })
    }

    /// Validate parameters, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Dist::Constant(v) if v.is_finite() && v >= 0.0 => Ok(()),
            Dist::Constant(v) => Err(format!("constant {v} must be finite and ≥ 0")),
            Dist::Uniform { lo, hi }
                if lo < hi && lo.is_finite() && hi.is_finite() && lo >= 0.0 =>
            {
                Ok(())
            }
            Dist::Uniform { lo, hi } => Err(format!("bad uniform range [{lo}, {hi})")),
            Dist::Exponential { mean } if mean > 0.0 && mean.is_finite() => Ok(()),
            Dist::Exponential { mean } => Err(format!("bad exponential mean {mean}")),
            Dist::LogNormal { sigma, .. } if sigma >= 0.0 && sigma.is_finite() => Ok(()),
            Dist::LogNormal { sigma, .. } => Err(format!("bad log-normal sigma {sigma}")),
            Dist::Pareto { xm, alpha } if xm > 0.0 && alpha > 0.0 => Ok(()),
            Dist::Pareto { xm, alpha } => Err(format!("bad pareto (xm={xm}, alpha={alpha})")),
            Dist::NormalClamped { sigma, .. } if sigma >= 0.0 && sigma.is_finite() => Ok(()),
            Dist::NormalClamped { sigma, .. } => Err(format!("bad normal sigma {sigma}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &Dist, n: u32) -> f64 {
        let mut rng = Rng::new(77);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn closed_form_means_match_samples() {
        let cases = [
            Dist::Constant(4.2),
            Dist::Uniform { lo: 1.0, hi: 5.0 },
            Dist::Exponential { mean: 2.0 },
            Dist::LogNormal {
                mu: 0.5,
                sigma: 0.4,
            },
            Dist::Pareto {
                xm: 1.0,
                alpha: 3.0,
            },
        ];
        for d in cases {
            let expect = d.mean().expect("mean exists");
            let got = empirical_mean(&d, 200_000);
            assert!(
                (got - expect).abs() / expect < 0.03,
                "{d:?}: empirical {got} vs {expect}"
            );
        }
    }

    #[test]
    fn heavy_pareto_has_no_mean() {
        assert_eq!(
            Dist::Pareto {
                xm: 1.0,
                alpha: 0.9
            }
            .mean(),
            None
        );
    }

    #[test]
    fn clamped_normal_never_negative() {
        let d = Dist::NormalClamped {
            mu: 0.5,
            sigma: 2.0,
        };
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn durations_are_seconds() {
        let d = Dist::Constant(1.5);
        let mut rng = Rng::new(1);
        assert_eq!(d.sample_duration(&mut rng), Duration::from_millis(1500));
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(Dist::Uniform { lo: 5.0, hi: 5.0 }.validate().is_err());
        assert!(Dist::Exponential { mean: 0.0 }.validate().is_err());
        assert!(Dist::Pareto {
            xm: 0.0,
            alpha: 1.0
        }
        .validate()
        .is_err());
        assert!(Dist::Constant(f64::NAN).validate().is_err());
        assert!(Dist::Uniform { lo: 0.0, hi: 1.0 }.validate().is_ok());
        assert!(Dist::LogNormal {
            mu: -1.0,
            sigma: 0.5
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Dist::LogNormal {
            mu: 1.0,
            sigma: 1.0,
        };
        let a: Vec<f64> = {
            let mut rng = Rng::new(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = Rng::new(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
