//! # sim-engine
//!
//! Deterministic discrete-event simulation kernel used by the Spider
//! (CoNEXT 2011) reproduction.
//!
//! The paper's evaluation ran on real cars, radios, and access points; this
//! workspace reproduces it in simulation, so the kernel's job is to make
//! every run an exact, seedable function of its inputs:
//!
//! * [`time`] — integer-nanosecond virtual clock ([`time::Instant`],
//!   [`time::Duration`]).
//! * [`queue`] — future-event list with strict total order and O(1) timer
//!   cancellation.
//! * [`runner`] — the event pump ([`runner::Handler`],
//!   [`runner::run_until`]).
//! * [`rng`] — self-contained xoshiro256** PRNG with forkable streams and
//!   the distributions the paper's models need.
//! * [`dist`] — a parametric distribution vocabulary for configs.
//! * [`stats`] — the estimators behind every reported number: streaming
//!   moments, percentiles/ECDFs, time-weighted averages.
//! * [`trace`] — bounded, category-filtered event tracing for debugging
//!   multi-million-event runs.
//! * [`wire`] — zero-dependency byte buffers ([`wire::Bytes`],
//!   [`wire::Writer`], [`wire::Reader`]) backing every protocol codec.
//! * [`par`] — a std-only scoped worker pool with deterministic per-task
//!   RNG forking, the experiment harness's fan-out engine.
//! * [`check`] — the in-tree property-testing harness (seeded cases,
//!   shrink-by-halving, failure-seed replay).
//!
//! The kernel is deliberately dependency-free: `cargo build --offline`
//! from an empty registry cache must always succeed (enforced by `ci.sh`).
//!
//! Nothing here knows about Wi-Fi; higher crates (`wifi-mac`, `dhcp`,
//! `tcp-lite`, `spider-core`) compose on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod dist;
pub mod par;
pub mod queue;
pub mod rng;
pub mod runner;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wire;

pub use check::{check, check_with, CaseResult, Gen};
pub use dist::Dist;
pub use queue::{EventId, EventQueue};
pub use rng::Rng;
pub use runner::{run_to_quiescence, run_until, Handler};
pub use stats::{Histogram, Samples, Summary, TimeWeighted};
pub use time::{Duration, Instant};
pub use trace::{Category, Trace};
pub use wire::{Bytes, Reader, WireError, Writer};
