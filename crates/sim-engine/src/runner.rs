//! A minimal driver loop over [`EventQueue`].
//!
//! Concrete simulations (the Spider world, the Monte-Carlo join simulator)
//! define an event enum and implement [`Handler`]; [`run_until`] then pumps
//! events in deterministic order until a deadline or quiescence.

use crate::queue::EventQueue;
use crate::time::Instant;

/// A simulation component that consumes events and schedules new ones.
pub trait Handler<E> {
    /// Handle `event`, which fired at time `at`. New events are scheduled
    /// through `queue`; `queue.now()` equals `at` for the duration of the
    /// call.
    fn handle(&mut self, at: Instant, event: E, queue: &mut EventQueue<E>);
}

/// Pump events until the queue is empty or the next event is after
/// `deadline`. Events *at* the deadline still fire. Returns the number of
/// events delivered.
pub fn run_until<E, H: Handler<E>>(
    queue: &mut EventQueue<E>,
    handler: &mut H,
    deadline: Instant,
) -> u64 {
    let mut delivered = 0;
    while let Some((at, event)) = queue.pop_at_or_before(deadline) {
        handler.handle(at, event, queue);
        delivered += 1;
    }
    delivered
}

/// Pump all events to quiescence. Returns the number of events delivered.
///
/// Only safe for simulations that are guaranteed to stop scheduling (e.g. a
/// fixed number of trials); worlds with periodic timers must use
/// [`run_until`].
pub fn run_to_quiescence<E, H: Handler<E>>(queue: &mut EventQueue<E>, handler: &mut H) -> u64 {
    let mut delivered = 0;
    while let Some((at, event)) = queue.pop() {
        handler.handle(at, event, queue);
        delivered += 1;
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    /// A handler that re-arms itself `remaining` times at a fixed period.
    struct Ticker {
        period: Duration,
        remaining: u32,
        fired_at: Vec<Instant>,
    }

    impl Handler<()> for Ticker {
        fn handle(&mut self, at: Instant, _event: (), queue: &mut EventQueue<()>) {
            self.fired_at.push(at);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.push(at + self.period, ());
            }
        }
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut q = EventQueue::new();
        q.push(Instant::ZERO, ());
        let mut t = Ticker {
            period: Duration::from_millis(100),
            remaining: 100,
            fired_at: vec![],
        };
        let n = run_until(&mut q, &mut t, Instant::from_millis(300));
        assert_eq!(n, 4); // 0, 100, 200, 300 ms
        assert_eq!(*t.fired_at.last().unwrap(), Instant::from_millis(300));
        assert_eq!(q.peek_time(), Some(Instant::from_millis(400)));
    }

    #[test]
    fn run_to_quiescence_drains() {
        let mut q = EventQueue::new();
        q.push(Instant::ZERO, ());
        let mut t = Ticker {
            period: Duration::from_millis(10),
            remaining: 5,
            fired_at: vec![],
        };
        let n = run_to_quiescence(&mut q, &mut t);
        assert_eq!(n, 6);
        assert!(q.pop().is_none());
    }
}
