//! The event queue at the heart of the discrete-event simulator.
//!
//! [`EventQueue`] is a priority queue of `(Instant, E)` pairs with a strict
//! total order: events at the same instant fire in insertion order
//! (a monotone sequence number breaks ties). This makes simulation runs
//! deterministic — the property everything else in this workspace leans on.
//!
//! Timers that may need to be rearmed (DHCP retransmits, TCP RTO, channel
//! scheduler ticks) are handled by *cancellation tokens*: `push` returns an
//! [`EventId`], and [`EventQueue::cancel`] marks it dead; dead events are
//! skipped on pop. This is O(1) per cancel and avoids the classic
//! decrease-key problem.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::Instant;

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: Instant,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

/// A deterministic future-event list.
///
/// ```
/// use sim_engine::queue::EventQueue;
/// use sim_engine::time::Instant;
///
/// let mut q = EventQueue::new();
/// q.push(Instant::from_millis(20), "b");
/// q.push(Instant::from_millis(10), "a");
/// let id = q.push(Instant::from_millis(15), "cancelled");
/// q.cancel(id);
/// assert_eq!(q.pop(), Some((Instant::from_millis(10), "a")));
/// assert_eq!(q.pop(), Some((Instant::from_millis(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: BTreeSet<u64>,
    next_seq: u64,
    /// Time of the most recently popped event; pops are monotone.
    now: Instant,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`Instant::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            now: Instant::ZERO,
            popped: 0,
        }
    }

    /// The time of the last popped event — "now" from the perspective of the
    /// code currently handling an event.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Total number of events delivered so far (diagnostics).
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current queue time: an event
    /// handler may only schedule into the present or future.
    pub fn push(&mut self, at: Instant, event: E) -> EventId {
        assert!(
            at >= self.now,
            "EventQueue::push: scheduling into the past ({at} < now {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Idempotent; cancelling an event
    /// that already fired is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Pop the earliest live event, advancing the queue clock to its time.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "event queue time went backwards");
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Time of the earliest live event, without popping it.
    pub fn peek_time(&mut self) -> Option<Instant> {
        // Drain dead entries from the top so peek is accurate.
        while let Some(top) = self.heap.peek() {
            if !self.cancelled.contains(&top.seq) {
                return Some(top.at);
            }
            if let Some(dead) = self.heap.pop() {
                self.cancelled.remove(&dead.seq);
            }
        }
        None
    }

    /// Pop the earliest live event if it fires at or before `deadline`,
    /// advancing the clock; events strictly after `deadline` stay queued.
    pub fn pop_at_or_before(&mut self, deadline: Instant) -> Option<(Instant, E)> {
        if self.peek_time()? > deadline {
            return None;
        }
        self.pop()
    }

    /// Number of scheduled events, *including* cancelled tombstones still in
    /// the heap. Use [`EventQueue::has_live_events`] for an accurate
    /// emptiness test.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if the heap holds nothing at all (not even tombstones).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True if at least one non-cancelled event remains.
    pub fn has_live_events(&mut self) -> bool {
        self.peek_time().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Instant::from_millis(30), 3);
        q.push(Instant::from_millis(10), 1);
        q.push(Instant::from_millis(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Instant::from_millis(5);
        for i in 0..10 {
            q.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        q.push(Instant::from_millis(7), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn pushing_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(Instant::from_millis(10), ());
        q.pop();
        q.push(Instant::from_millis(5), ());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), "a");
        let _b = q.push(Instant::from_millis(2), "b");
        q.cancel(a);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.cancel(a);
        q.push(Instant::from_millis(2), "b");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), "a");
        q.push(Instant::from_millis(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Instant::from_millis(9)));
        assert!(q.has_live_events());
        q.pop();
        assert!(!q.has_live_events());
    }

    #[test]
    fn delivered_counts_only_live_events() {
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), ());
        q.push(Instant::from_millis(2), ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    fn randomized_ordering_matches_sorted_reference() {
        let mut rng = Rng::new(1234);
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (time_ms, seq)
        for seq in 0..2_000 {
            let t = rng.range_u64(0, 500);
            q.push(Instant::from_millis(t), seq);
            reference.push((t, seq));
        }
        reference.sort(); // (time, insertion seq) — exactly the queue's order
        for &(t, seq) in &reference {
            let (at, got) = q.pop().unwrap();
            assert_eq!(at, Instant::from_millis(t));
            assert_eq!(got, seq);
        }
        assert!(q.pop().is_none());
    }
}
