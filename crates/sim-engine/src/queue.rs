//! The event queue at the heart of the discrete-event simulator.
//!
//! [`EventQueue`] is a priority queue of `(Instant, E)` pairs with a strict
//! total order: events at the same instant fire in insertion order
//! (a monotone sequence number breaks ties). This makes simulation runs
//! deterministic — the property everything else in this workspace leans on.
//!
//! Timers that may need to be rearmed (DHCP retransmits, TCP RTO, channel
//! scheduler ticks) are handled by *cancellation tokens*: `push` returns an
//! [`EventId`], and [`EventQueue::cancel`] marks it dead; dead events are
//! skipped on pop. This is O(1) per cancel and avoids the classic
//! decrease-key problem.
//!
//! # Hot-path design: generation-tagged slots
//!
//! Cancellation is tracked by a slot arena, not an ordered tombstone set.
//! Every scheduled event owns a slot (`u32` index into a `Vec`); the slot
//! carries a generation counter and a live flag. An [`EventId`] is the
//! `(slot, generation)` pair, so a stale handle — one whose event already
//! fired, or whose slot was since recycled for a newer event — fails the
//! generation check and cancels nothing. Pop checks one `Vec` element per
//! entry instead of probing a `BTreeSet`, and slots are recycled through a
//! free list, so a steady-state run performs no per-event allocation once
//! the arena has grown to the peak number of outstanding events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Instant;

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Internally a `(slot, generation)` pair: cancelling a handle whose event
/// already fired (and whose slot may have been recycled) is a harmless
/// no-op because the generation no longer matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Per-slot bookkeeping: the current generation, whether the event
/// occupying the slot is still live (scheduled and not cancelled), and
/// the event payload itself. Keeping the payload here — index-addressed
/// by the 24-byte heap entries — means heap sift operations move small
/// fixed-size keys instead of whole events.
struct Slot<E> {
    gen: u32,
    live: bool,
    event: Option<E>,
}

struct Entry {
    at: Instant,
    seq: u64,
    slot: u32,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event.
// Ordering depends only on (at, seq) — slot assignment never affects the
// pop order, which is what keeps the slot rewrite event-order-neutral.
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

/// A deterministic future-event list.
///
/// ```
/// use sim_engine::queue::EventQueue;
/// use sim_engine::time::Instant;
///
/// let mut q = EventQueue::new();
/// q.push(Instant::from_millis(20), "b");
/// q.push(Instant::from_millis(10), "a");
/// let id = q.push(Instant::from_millis(15), "cancelled");
/// q.cancel(id);
/// assert_eq!(q.live_len(), 2);
/// assert_eq!(q.pop(), Some((Instant::from_millis(10), "a")));
/// assert_eq!(q.pop(), Some((Instant::from_millis(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    /// Slot arena; entry `i` holds the event (if any) occupying slot `i`.
    slots: Vec<Slot<E>>,
    /// Recycled slot indices available for the next push.
    free: Vec<u32>,
    /// Number of cancelled entries still physically present in the heap.
    cancelled: usize,
    next_seq: u64,
    /// Time of the most recently popped event; pops are monotone.
    now: Instant,
    popped: u64,
    /// High-water mark of live (non-cancelled) scheduled events.
    peak_live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`Instant::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            cancelled: 0,
            next_seq: 0,
            now: Instant::ZERO,
            popped: 0,
            peak_live: 0,
        }
    }

    /// The time of the last popped event — "now" from the perspective of the
    /// code currently handling an event.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Total number of events delivered so far (diagnostics).
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// High-water mark of live scheduled events over the queue's lifetime
    /// (diagnostics; also the steady-state size of the slot arena).
    ///
    /// Cancelled entries still physically queued in the heap are **not**
    /// counted: this is the depth campaign progress lines report, and a
    /// timer-heavy run that cancels most of what it schedules would
    /// otherwise look far deeper than it ever was.
    pub fn peak_depth(&self) -> usize {
        self.peak_live
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current queue time: an event
    /// handler may only schedule into the present or future.
    pub fn push(&mut self, at: Instant, event: E) -> EventId {
        assert!(
            at >= self.now,
            "EventQueue::push: scheduling into the past ({at} < now {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.live = true;
                s.event = Some(event);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    live: true,
                    event: Some(event),
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(Entry { at, seq, slot });
        let live = self.heap.len() - self.cancelled;
        if live > self.peak_live {
            self.peak_live = live;
        }
        EventId { slot, gen }
    }

    /// Cancel a previously scheduled event. Idempotent; cancelling an event
    /// that already fired is a harmless no-op (the slot's generation has
    /// moved on, so the stale handle matches nothing). O(1).
    pub fn cancel(&mut self, id: EventId) {
        if let Some(slot) = self.slots.get_mut(id.slot as usize) {
            if slot.gen == id.gen && slot.live {
                slot.live = false;
                // Drop the payload now; the dead heap entry is just a key.
                slot.event = None;
                self.cancelled += 1;
            }
        }
    }

    /// Retire `slot` once its entry has left the heap: bump the generation
    /// (invalidating outstanding handles) and recycle the index.
    fn release_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.live = false;
        s.event = None;
        self.free.push(slot);
    }

    /// Pop the earliest live event, advancing the queue clock to its time.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        while let Some(entry) = self.heap.pop() {
            let event = self.slots[entry.slot as usize].event.take();
            self.release_slot(entry.slot);
            let Some(event) = event else {
                // Cancelled: the payload was dropped at cancel time.
                self.cancelled -= 1;
                continue;
            };
            debug_assert!(entry.at >= self.now, "event queue time went backwards");
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, event));
        }
        None
    }

    /// Time of the earliest live event, without popping it. Drains dead
    /// entries from the top of the heap as a side effect, so repeated calls
    /// are cheap; see [`EventQueue::next_live_time`] for a `&self` variant.
    pub fn peek_time(&mut self) -> Option<Instant> {
        while let Some(top) = self.heap.peek() {
            if self.slots[top.slot as usize].live {
                return Some(top.at);
            }
            if let Some(dead) = self.heap.pop() {
                self.cancelled -= 1;
                self.release_slot(dead.slot);
            }
        }
        None
    }

    /// Time of the earliest live event without mutating the queue.
    ///
    /// O(1) when the heap's top entry is live (the common case); falls back
    /// to a full scan when cancelled entries are stacked on top. Prefer
    /// [`EventQueue::peek_time`] in loops that also pop — it compacts as it
    /// goes.
    pub fn next_live_time(&self) -> Option<Instant> {
        let top = self.heap.peek()?;
        if self.slots[top.slot as usize].live {
            return Some(top.at);
        }
        self.heap
            .iter()
            .filter(|e| self.slots[e.slot as usize].live)
            .map(|e| e.at)
            .min()
    }

    /// Pop the earliest live event if it fires at or before `deadline`,
    /// advancing the clock; events strictly after `deadline` stay queued.
    pub fn pop_at_or_before(&mut self, deadline: Instant) -> Option<(Instant, E)> {
        if self.peek_time()? > deadline {
            return None;
        }
        self.pop()
    }

    /// Number of scheduled events **including cancelled entries** still
    /// physically present in the heap. This over-counts after cancellations;
    /// it exists because it is free. Use [`EventQueue::live_len`] for the
    /// number of events that will actually fire, or
    /// [`EventQueue::has_live_events`] for an emptiness test.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of live (non-cancelled) scheduled events. O(1): maintained by
    /// a cancelled-entry counter, not by scanning tombstones.
    pub fn live_len(&self) -> usize {
        self.heap.len() - self.cancelled
    }

    /// True if no live event remains — the complement of
    /// [`EventQueue::live_len`], O(1) and `&self`.
    ///
    /// This deliberately does **not** mirror [`EventQueue::len`]: a queue
    /// holding only cancelled tombstones is empty for every purpose a
    /// caller can observe (nothing will fire), and an `is_empty()` that
    /// said `false` there was a footgun. For the physical heap size —
    /// tombstones included — compare `len()` to zero explicitly.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// True if at least one non-cancelled event remains.
    pub fn has_live_events(&mut self) -> bool {
        self.peek_time().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Instant::from_millis(30), 3);
        q.push(Instant::from_millis(10), 1);
        q.push(Instant::from_millis(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Instant::from_millis(5);
        for i in 0..10 {
            q.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        q.push(Instant::from_millis(7), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn pushing_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(Instant::from_millis(10), ());
        q.pop();
        q.push(Instant::from_millis(5), ());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), "a");
        let _b = q.push(Instant::from_millis(2), "b");
        q.cancel(a);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.cancel(a);
        q.push(Instant::from_millis(2), "b");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn stale_handle_does_not_cancel_slot_reuser() {
        // Event `a` fires; its slot is recycled by `b`. Cancelling the stale
        // handle for `a` must not kill `b` — the generation tag prevents the
        // ABA aliasing a bare slot index would suffer.
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        let _b = q.push(Instant::from_millis(2), "b");
        q.cancel(a); // stale: same slot, older generation
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn double_cancel_counts_once() {
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), ());
        q.push(Instant::from_millis(2), ());
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.len(), 2); // cancelled entry still physically queued
        while q.pop().is_some() {}
        assert_eq!(q.live_len(), 0);
    }

    #[test]
    fn is_empty_ignores_tombstones() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.push(Instant::from_millis(1), ());
        assert!(!q.is_empty());
        q.cancel(a);
        // Only a cancelled tombstone remains: nothing will fire, so the
        // queue is empty even though the heap is physically occupied.
        assert!(q.is_empty());
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), "a");
        q.push(Instant::from_millis(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Instant::from_millis(9)));
        assert!(q.has_live_events());
        q.pop();
        assert!(!q.has_live_events());
    }

    #[test]
    fn next_live_time_is_non_draining() {
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), "a");
        q.push(Instant::from_millis(9), "b");
        q.cancel(a);
        // &self peek sees through the cancelled top without compacting.
        assert_eq!(q.next_live_time(), Some(Instant::from_millis(9)));
        assert_eq!(q.len(), 2, "non-draining peek must not pop dead entries");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.next_live_time(), None);
    }

    #[test]
    fn delivered_counts_only_live_events() {
        let mut q = EventQueue::new();
        let a = q.push(Instant::from_millis(1), ());
        q.push(Instant::from_millis(2), ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    fn peak_depth_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_depth(), 0);
        for i in 0..5 {
            q.push(Instant::from_millis(i), ());
        }
        while q.pop().is_some() {}
        q.push(Instant::from_millis(10), ());
        assert_eq!(q.peak_depth(), 5);
    }

    #[test]
    fn peak_depth_ignores_cancelled_but_queued_entries() {
        // Cancelled events stay physically in the heap until popped past;
        // the reported peak must count live events only, or campaigns that
        // cancel most of their timers would report inflated depths.
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.push(Instant::from_millis(i), ()))
            .collect();
        assert_eq!(q.peak_depth(), 10);
        for id in ids {
            q.cancel(id);
        }
        for i in 10..15 {
            q.push(Instant::from_millis(i), ());
        }
        // The heap now physically holds 15 entries, but only 5 are live.
        assert_eq!(q.peak_depth(), 10, "cancelled entries inflated the peak");
    }

    #[test]
    fn slots_are_recycled_not_leaked() {
        // Steady-state churn must not grow the arena past the peak number
        // of outstanding events.
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..4 {
                q.push(Instant::from_millis(round * 10 + i), i);
            }
            while q.pop().is_some() {}
        }
        assert!(
            q.slots.len() <= 4,
            "slot arena grew to {} for 4 outstanding events",
            q.slots.len()
        );
    }

    #[test]
    fn randomized_ordering_matches_sorted_reference() {
        let mut rng = Rng::new(1234);
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (time_ms, seq)
        for seq in 0..2_000 {
            let t = rng.range_u64(0, 500);
            q.push(Instant::from_millis(t), seq);
            reference.push((t, seq));
        }
        reference.sort(); // (time, insertion seq) — exactly the queue's order
        for &(t, seq) in &reference {
            let (at, got) = q.pop().unwrap();
            assert_eq!(at, Instant::from_millis(t));
            assert_eq!(got, seq);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn randomized_churn_with_cancels_matches_reference() {
        // Interleaved push/cancel/pop against a sorted reference model,
        // exercising slot recycling under realistic timer-rearm churn.
        let mut rng = Rng::new(0xDE5);
        let mut q = EventQueue::new();
        let mut live: Vec<(u64, u64, EventId)> = Vec::new(); // (ms, payload, id)
        let mut next_payload = 0u64;
        for _ in 0..5_000 {
            match rng.range_u64(0, 3) {
                0 => {
                    let t = q.now().as_micros() / 1000 + rng.range_u64(0, 50);
                    let id = q.push(Instant::from_millis(t), next_payload);
                    live.push((t, next_payload, id));
                    next_payload += 1;
                }
                1 if !live.is_empty() => {
                    let k = rng.range_u64(0, live.len() as u64) as usize;
                    let (_, _, id) = live.swap_remove(k);
                    q.cancel(id);
                }
                _ => {
                    // Reference pop: earliest (time, payload) — payloads are
                    // assigned in push order, so they mirror the seq tiebreak.
                    live.sort_by_key(|&(t, payload, _)| (t, payload));
                    let expect = live.first().copied();
                    match (q.pop(), expect) {
                        (Some((at, got)), Some((t, payload, _))) => {
                            live.remove(0);
                            assert_eq!(at, Instant::from_millis(t));
                            assert_eq!(got, payload);
                        }
                        (None, None) => {}
                        (got, want) => {
                            panic!("queue {got:?} disagrees with reference {want:?}")
                        }
                    }
                }
            }
            assert_eq!(q.live_len(), live.len());
        }
    }
}
